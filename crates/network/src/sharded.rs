//! Sharded (multi-threaded) execution of the communication model.
//!
//! The machine's nodes are partitioned into contiguous shards
//! ([`Partition`]); each shard runs its routers and processors in a
//! private [`pearl::Engine`] on its own thread. Threads advance in
//! conservative windows of width `L` — the configuration's
//! [`lookahead`]: every round the shards agree on the globally earliest
//! pending event `m` ([`WindowBarrier::agree_min`]) and then each executes
//! all its events in `[m, m+L)`. Any cross-shard message produced inside
//! the window arrives at `≥ m+L` (every router→router hand-off pays at
//! least `L` of modelled latency), so no shard can miss an event — and
//! because cross-shard messages carry the exact [`pearl::EventKey`] the
//! serial schedule would have used, each shard's queue pops in exactly the
//! serial delivery order. A sharded run is therefore *bit-identical* to
//! [`CommSim::run`]: same results, same per-node statistics, same
//! model-level probe events. See DESIGN.md §11 for the full argument.
//!
//! Zero lookahead or a single shard falls back to the serial path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread;

use mermaid_ops::TraceSet;
use mermaid_probe::{canonical_sort, AttributionSink, ProbeHandle, ProbeStack, SimEvent};
use pearl::engine::RunResult;
use pearl::{CompId, Duration, Engine, Time, WindowBarrier, IDLE_PS};

use crate::config::NetworkConfig;
use crate::fault::FaultSchedule;
use crate::packet::NetMsg;
use crate::partition::{lookahead, PairLookahead, Partition};
use crate::processor::AbstractProcessor;
use crate::router::{CrossShard, OutMsg, Router};
use crate::sim::{CommResult, CommSim, NodeCommStats};
use crate::snapshot::{
    capture_piece, load_engine_state, restore_engine, save_engine_state, EngineState, ShardPiece,
    Snapshot, SnapshotError,
};
use crate::world::NetWorld;

/// One cross-shard transfer: every message a shard produced for one
/// destination shard in one flush, shipped as a single channel send.
type Batch = Vec<OutMsg>;

/// Capacity (in batches) of each shard's cross-shard inbox channel,
/// derived from the protocol rather than guessed: a sender ships at most
/// one batch per destination per flush point, there are at most two flush
/// points per round (the round-top flush and the pre-capture flush of a
/// checkpoint rendezvous), and a receiver drains its inbox between any
/// two of its own flush points — so at most `2` undrained batches can
/// exist per sender at any instant, `2 * (k - 1)` per channel. A full
/// channel therefore cannot happen in a correct run; [`ship`] treats it
/// as a protocol-invariant violation instead of retrying (the PR 3 code
/// sized the channel at a magic 1024 messages and span on full).
fn channel_capacity(shards: usize) -> usize {
    2 * shards.saturating_sub(1).max(1)
}

/// Push one batch into a destination shard's inbox, panicking on the
/// (provably impossible) full or disconnected channel — see
/// [`channel_capacity`] for the bound.
fn ship(tx: &SyncSender<Batch>, batch: Batch, from: usize, to: usize) {
    match tx.try_send(batch) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => panic!(
            "cross-shard channel {from}->{to} full: the batched-flush protocol \
             bounds in-flight batches below the channel capacity, so this is a \
             sharding protocol bug, not backpressure"
        ),
        Err(TrySendError::Disconnected(_)) => {
            unreachable!("inbox receivers live for the whole run")
        }
    }
}

/// Speculative-window policy for sharded runs. Speculation never changes
/// results — a mis-speculated window is rolled back and re-executed from
/// an in-memory snapshot — it only trades (bounded) re-execution risk for
/// fewer barrier rounds when the conservative window bound is degenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Speculation {
    /// Never speculate: pure conservative windows.
    Off,
    /// Speculate past degenerate windows with a threshold derived from
    /// the configuration's lookahead (currently `8 x` lookahead).
    #[default]
    Auto,
    /// Speculate with an explicit window threshold: a conservative window
    /// narrower than this triggers a speculative run out to
    /// `next event + threshold`.
    Threshold(Duration),
}

impl Speculation {
    /// The speculation threshold in picoseconds; `None` when off.
    fn threshold_ps(self, la: Duration) -> Option<u64> {
        match self {
            Speculation::Off => None,
            Speculation::Auto => Some(8 * la.as_ps()),
            Speculation::Threshold(d) => Some(d.as_ps()).filter(|&ps| ps > 0),
        }
    }
}

/// Iterations a waiting shard spends yielding (the fast path: peers
/// usually arrive within a scheduling quantum) before it parks on a
/// condvar. Yield — not `spin_loop` — so single-core hosts still make
/// progress during the spin phase.
const SPIN_LIMIT: u32 = 64;

/// How long a parked shard sleeps between inbox drains. Parked shards
/// must keep draining their channel — a peer blocked on a full channel
/// to us needs our capacity back — so the park is a timed wait, not an
/// unbounded one. Host-time only; simulated time is unaffected.
const PARK_WAIT: std::time::Duration = std::time::Duration::from_millis(1);

/// A shard's preferred worker count for `--shards auto`.
pub fn auto_shards() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// The round-arrival gate: each shard bumps the counter once per round
/// and then waits until all `k` shards of that round have arrived (by
/// which point every cross-shard message of the previous window is in
/// its destination channel).
///
/// Waiting yields for a bounded number of iterations and then parks on a
/// condvar instead of spinning — an idle shard must not burn a core while
/// a busy peer finishes its window (ISSUE 8 satellite 1). The park is a
/// timed wait so the shard keeps draining its own inbox, which keeps the
/// bounded channels deadlock-free even while parked.
struct RoundGate {
    arrivals: AtomicU64,
    lock: Mutex<()>,
    cond: Condvar,
}

impl RoundGate {
    fn new() -> Self {
        RoundGate {
            arrivals: AtomicU64::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Register this shard's arrival for the current round and wake any
    /// parked waiters.
    fn arrive(&self) {
        self.arrivals.fetch_add(1, Ordering::AcqRel);
        // Lock-then-notify pairs with the waiter's locked re-check: an
        // arrival is either visible to that re-check or notifies after
        // the waiter started waiting. No wake-up can be lost.
        let _guard = self.lock.lock().unwrap();
        self.cond.notify_all();
    }

    /// Wait until at least `target` shards have arrived, calling `drain`
    /// between checks so this shard's inbox keeps emptying.
    fn wait(&self, target: u64, mut drain: impl FnMut()) {
        for _ in 0..SPIN_LIMIT {
            if self.arrivals.load(Ordering::Acquire) >= target {
                return;
            }
            drain();
            thread::yield_now();
        }
        loop {
            if self.arrivals.load(Ordering::Acquire) >= target {
                return;
            }
            {
                let guard = self.lock.lock().unwrap();
                if self.arrivals.load(Ordering::Acquire) >= target {
                    return;
                }
                let _ = self.cond.wait_timeout(guard, PARK_WAIT).unwrap();
            }
            drain();
        }
    }
}

/// What one shard worker hands back after the run.
struct ShardOut {
    /// Stats of this shard's nodes, in node order.
    nodes: Vec<NodeCommStats>,
    /// Events this shard's engine delivered.
    events: u64,
    /// Model-level probe events recorded by this shard (emission order).
    probe_events: Vec<SimEvent>,
    /// This shard's self-profile.
    profile: ShardProfileEntry,
}

/// One shard's self-profile: where its wall-clock time went and how much
/// work each lookahead window carried.
///
/// The `*_ns` fields are **host wall-clock** — they vary run to run and
/// between machines, so they are deliberately kept out of `CommResult`,
/// probe streams and any deterministic output (attribution reports,
/// default stdout); they exist to answer "which sharding overhead
/// dominates" for a given run (ROADMAP open item 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProfileEntry {
    /// Shard index.
    pub shard: usize,
    /// Lookahead windows (rounds of the window loop) this shard executed.
    pub windows: u64,
    /// Engine events the shard delivered over the whole run.
    pub events: u64,
    /// Cross-shard messages this shard pushed into peers' inboxes.
    pub cross_sent: u64,
    /// Cross-shard messages this shard drained from its own inbox.
    pub cross_recv: u64,
    /// Batched channel sends carrying those messages (one per destination
    /// shard per flush with traffic) — the actual channel operation count.
    pub flush_batches: u64,
    /// Speculative windows whose results were validated and kept.
    pub spec_commits: u64,
    /// Speculative windows rolled back and re-executed conservatively
    /// (including stagnation aborts, which restore the same snapshot).
    pub spec_rollbacks: u64,
    /// Log2 histogram of executed window widths: `window_hist[b]` counts
    /// windows whose width in picoseconds satisfied `2^b <= width <
    /// 2^(b+1)` (bucket 0 also holds zero-width rounds). Empty when the
    /// shard executed no window.
    pub window_hist: Vec<u64>,
    /// Host nanoseconds spent waiting on the round gate and window barrier.
    pub barrier_wait_ns: u64,
    /// Host nanoseconds spent executing events (`Engine::run_until`).
    pub work_ns: u64,
}

/// Number of log2 buckets in [`ShardProfileEntry::window_hist`] — enough
/// for any u64 width.
const WIDTH_BUCKETS: usize = 64;

impl ShardProfileEntry {
    /// Mean events executed per lookahead window (window occupancy).
    pub fn events_per_window(&self) -> u64 {
        self.events.checked_div(self.windows).unwrap_or(0)
    }

    /// Record one executed window of `width_ps` in the log2 histogram.
    fn record_width(&mut self, width_ps: u64) {
        if self.window_hist.is_empty() {
            self.window_hist = vec![0; WIDTH_BUCKETS];
        }
        let bucket = (u64::BITS - 1).saturating_sub(width_ps.leading_zeros()) as usize;
        self.window_hist[bucket] += 1;
    }
}

/// Self-profile of a whole sharded run: one entry per shard, in shard
/// order. See [`ShardProfileEntry`] for the determinism caveat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Per-shard entries, indexed by shard id.
    pub shards: Vec<ShardProfileEntry>,
}

impl ShardProfile {
    /// Total host time all shards spent blocked on barriers.
    pub fn total_barrier_wait_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.barrier_wait_ns).sum()
    }

    /// Total host time all shards spent executing events.
    pub fn total_work_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.work_ns).sum()
    }

    /// Total cross-shard messages exchanged (as counted by senders).
    pub fn total_cross_msgs(&self) -> u64 {
        self.shards.iter().map(|s| s.cross_sent).sum()
    }

    /// Total batched channel sends across all shards.
    pub fn total_flush_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.flush_batches).sum()
    }

    /// Total committed speculative windows across all shards.
    pub fn total_spec_commits(&self) -> u64 {
        self.shards.iter().map(|s| s.spec_commits).sum()
    }

    /// Total rolled-back speculative windows across all shards.
    pub fn total_spec_rollbacks(&self) -> u64 {
        self.shards.iter().map(|s| s.spec_rollbacks).sum()
    }

    /// Element-wise sum of every shard's window-width histogram.
    pub fn window_hist(&self) -> Vec<u64> {
        let mut all = vec![0u64; WIDTH_BUCKETS];
        for s in &self.shards {
            for (a, w) in all.iter_mut().zip(&s.window_hist) {
                *a += w;
            }
        }
        all
    }

    /// Barrier wait as parts-per-million of total shard wall-clock
    /// (barrier + work). Answers "how synchronization-bound was this run".
    pub fn barrier_share_ppm(&self) -> u64 {
        let wait = self.total_barrier_wait_ns() as u128;
        let total = wait + self.total_work_ns() as u128;
        (wait * 1_000_000).checked_div(total).unwrap_or(0) as u64
    }

    /// Render a plain-text per-shard table. Wall-clock columns are host
    /// time and will differ between runs.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "shard  windows  events  ev/window  cross-sent  cross-recv  batches  \
             spec-commit  spec-rollback  barrier-us  work-us\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "{:>5}  {:>7}  {:>6}  {:>9}  {:>10}  {:>10}  {:>7}  {:>11}  {:>13}  {:>10}  {:>7}\n",
                s.shard,
                s.windows,
                s.events,
                s.events_per_window(),
                s.cross_sent,
                s.cross_recv,
                s.flush_batches,
                s.spec_commits,
                s.spec_rollbacks,
                s.barrier_wait_ns / 1_000,
                s.work_ns / 1_000,
            ));
        }
        out.push_str(&format!(
            "barrier wait: {}us of {}us total ({}.{:01}%)\n",
            self.total_barrier_wait_ns() / 1_000,
            (self.total_barrier_wait_ns() + self.total_work_ns()) / 1_000,
            self.barrier_share_ppm() / 10_000,
            self.barrier_share_ppm() % 10_000 / 1_000,
        ));
        let hist = self.window_hist();
        let lines: Vec<String> = hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, c)| format!("2^{b}ps:{c}"))
            .collect();
        if !lines.is_empty() {
            out.push_str(&format!("window widths (log2): {}\n", lines.join("  ")));
        }
        out
    }
}

/// Run the communication model across `shards` worker threads and return
/// a result bit-identical to `CommSim::new_with_probe(cfg, traces,
/// probe).run()`.
///
/// Falls back to the serial path when `shards <= 1`, when the topology is
/// too small to split, or when the configuration has zero lookahead.
/// With an enabled `probe`, the merged per-shard event stream is replayed
/// into it in canonical order; engine-internal events (queue depths,
/// ladder-tier moves) are per-shard artifacts and are not reproduced —
/// model-level events all are.
pub fn run_sharded(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    shards: usize,
) -> CommResult {
    run_sharded_with_faults(cfg, traces, probe, shards, None)
}

/// [`run_sharded`] with deterministic fault injection: bit-identical to
/// `CommSim::new_with_faults(cfg, traces, probe, faults).run()`.
///
/// Scripted fault events are self-events of the affected router, so each
/// shard posts only its own nodes' events — in the same per-node order as
/// the serial engine — before priming, which consumes exactly the serial
/// per-component key counters. Per-packet transient losses and corruptions
/// are drawn from a stateless seeded hash over the packet's identity and
/// the link it crosses, so the draw is the same whichever shard makes it.
pub fn run_sharded_with_faults(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
) -> CommResult {
    run_sharded_with_faults_profiled(cfg, traces, probe, shards, faults).0
}

/// [`run_sharded_with_faults`] that also returns the run's
/// [`ShardProfile`] — `None` when the run fell back to the serial path
/// (single shard, tiny topology, or zero lookahead). The `CommResult` is
/// unaffected by profiling; the profile is host-wall-clock data and must
/// stay out of deterministic outputs.
pub fn run_sharded_with_faults_profiled(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
) -> (CommResult, Option<ShardProfile>) {
    run_checkpointed(cfg, traces, probe, shards, faults, None, None)
        .expect("a run without checkpoint options cannot fail")
}

/// A request to write periodic checkpoints during a run: capture the
/// complete simulation state at every multiple of `every` (virtual time)
/// and hand the composed [`Snapshot`] to `write`. The same snapshot file
/// is produced whether the run is serial or sharded — per-shard captures
/// compose into exactly the bytes a serial capture at the same instant
/// yields (the contiguous-slice partition contract, DESIGN.md §15/§16).
pub struct CheckpointOpts<'a> {
    /// Checkpoint cadence in virtual time (must be non-zero).
    pub every: Duration,
    /// Campaign-layer config hash stamped into each snapshot.
    pub config_hash: String,
    /// Receives each finished snapshot (typically
    /// [`Snapshot::write_file`]). An error aborts checkpointing and fails
    /// the run once it completes.
    pub write: &'a (dyn Fn(&Snapshot) -> Result<(), SnapshotError> + Sync),
}

/// Shared state of the sharded capture protocol: every shard deposits
/// its [`ShardPiece`] (plus its buffered probe events, when attribution
/// is attached), all shards rendezvous on the barrier, then shard 0
/// composes and writes while the rest move on.
/// One shard's deposited capture: its partition slice plus the probe
/// events buffered since the previous checkpoint.
type CaptureSlot = Option<(ShardPiece, Vec<SimEvent>)>;

struct CkptSync<'a> {
    opts: &'a CheckpointOpts<'a>,
    /// Seed for the composed attribution record when the run itself was
    /// restored from a snapshot (the shard buffers only hold post-restore
    /// events).
    base_attr: Option<Vec<u64>>,
    /// Whether the caller's probe carries an attribution sink.
    want_attr: bool,
    slots: Mutex<Vec<CaptureSlot>>,
    barrier: Barrier,
    /// Set after a failed write: captures keep their (deterministic)
    /// rendezvous but no further snapshots are written.
    failed: AtomicBool,
    error: Mutex<Option<SnapshotError>>,
}

impl CkptSync<'_> {
    /// Shard 0, after the capture barrier: compose the deposited pieces
    /// into the canonical whole-machine snapshot and hand it to the sink.
    fn compose_and_write(&self) {
        let taken: Vec<(ShardPiece, Vec<SimEvent>)> = self
            .slots
            .lock()
            .unwrap()
            .iter_mut()
            .map(|s| s.take().expect("every shard deposited a piece"))
            .collect();
        if self.failed.load(Ordering::Acquire) {
            return;
        }
        let mut pieces = Vec::with_capacity(taken.len());
        let mut events: Vec<SimEvent> = Vec::new();
        for (p, evs) in taken {
            pieces.push(p);
            events.extend(evs);
        }
        let mut snap = Snapshot::compose(pieces);
        if self.want_attr {
            // Rebuild the attribution sink's state from the canonical
            // merge of every shard's buffered model events — the same
            // multiset the serial sink folded live, so the record is
            // byte-identical to a serial capture at this instant.
            canonical_sort(&mut events);
            let mut sink = AttributionSink::new();
            if let Some(base) = &self.base_attr {
                sink.restore_ints(base)
                    .expect("the restore entry validated this record");
            }
            for ev in &events {
                mermaid_probe::Probe::record(&mut sink, ev);
            }
            snap.attribution = Some(sink.snapshot_ints());
        }
        if let Err(e) = (self.opts.write)(&snap) {
            *self.error.lock().unwrap() = Some(e);
            self.failed.store(true, Ordering::Release);
        }
    }
}

/// The attribution sink's current state, when one is attached.
fn capture_attribution(probe: &ProbeHandle) -> Option<Vec<u64>> {
    probe
        .with_stack(|s| s.attribution.as_ref().map(|a| a.snapshot_ints()))
        .flatten()
}

/// Seed a restored run's attribution sink from the snapshot. A sink with
/// no matching record is refused: it would silently report only post-
/// restore evidence.
fn seed_attribution(probe: &ProbeHandle, snap: &Snapshot) -> Result<(), SnapshotError> {
    let has_sink = probe
        .with_stack(|s| s.attribution.is_some())
        .unwrap_or(false);
    if !has_sink {
        return Ok(());
    }
    match &snap.attribution {
        Some(ints) => probe
            .with_stack(|s| {
                s.attribution
                    .as_mut()
                    .expect("presence checked above")
                    .restore_ints(ints)
            })
            .expect("probe is enabled")
            .map_err(|detail| SnapshotError::Parse {
                context: "attribution record".into(),
                detail,
            }),
        None => Err(SnapshotError::Parse {
            context: "attribution record".into(),
            detail: "the snapshot has no `attr` record but this run attaches an attribution \
                     sink — re-create the checkpoint with attribution enabled, or drop it"
                .into(),
        }),
    }
}

/// [`run_sharded_with_faults_profiled`] extended with checkpoint/restore:
/// `restore_from` resumes a run from a [`Snapshot`] (bit-identically —
/// results, stats, probe stream and attribution match the uninterrupted
/// run from the instant on), and `ckpt` writes periodic snapshots during
/// the run. Serial and sharded execution accept both; a single shard or
/// zero lookahead falls back to the serial path exactly as the plain
/// entry does.
pub fn run_checkpointed(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
    restore_from: Option<&Snapshot>,
    ckpt: Option<&CheckpointOpts<'_>>,
) -> Result<(CommResult, Option<ShardProfile>), SnapshotError> {
    run_checkpointed_with(
        cfg,
        traces,
        probe,
        shards,
        faults,
        restore_from,
        ckpt,
        Speculation::default(),
    )
}

/// [`run_checkpointed`] with an explicit [`Speculation`] policy. The
/// policy affects scheduling only — results, stats, probe streams and
/// checkpoint files are bit-identical across every policy (and to the
/// serial run).
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_with(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
    restore_from: Option<&Snapshot>,
    ckpt: Option<&CheckpointOpts<'_>>,
    speculation: Speculation,
) -> Result<(CommResult, Option<ShardProfile>), SnapshotError> {
    cfg.validate();
    let part = Partition::contiguous(cfg.topology, shards);
    let la = lookahead(&cfg);
    if part.shards() <= 1 || la == Duration::ZERO {
        let result = run_serial_checkpointed(cfg, traces, probe, faults, restore_from, ckpt)?;
        return Ok((result, None));
    }
    run_sharded_inner(
        cfg,
        traces,
        probe,
        part,
        la,
        faults,
        restore_from,
        ckpt,
        speculation,
    )
}

/// The serial path of [`run_checkpointed`]: restore (if asked), then run
/// in stretches bounded by the next checkpoint instant, capturing at
/// each multiple of the cadence until the event set drains.
fn run_serial_checkpointed(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    faults: Option<Arc<FaultSchedule>>,
    restore_from: Option<&Snapshot>,
    ckpt: Option<&CheckpointOpts<'_>>,
) -> Result<CommResult, SnapshotError> {
    let mut sim = match restore_from {
        Some(snap) => {
            let sim = CommSim::restore(cfg, traces, probe.clone(), faults, snap)?;
            seed_attribution(&probe, snap)?;
            sim
        }
        None => match faults {
            Some(f) => CommSim::new_with_faults(cfg, traces, probe.clone(), f),
            None => CommSim::new_with_probe(cfg, traces, probe.clone()),
        },
    };
    if let Some(ck) = ckpt {
        let every = ck.every.as_ps();
        assert!(every > 0, "checkpoint cadence must be non-zero");
        let mut next_cp = match restore_from {
            // A restored run resumes the original cadence: its next
            // capture is the first multiple after the restore instant.
            Some(snap) => (snap.time.as_ps() / every + 1) * every,
            None => every,
        };
        loop {
            // Deliver everything strictly before the capture instant;
            // anything else means the event set drained first.
            if sim.run_until(Time::from_ps(next_cp - 1)) != RunResult::TimeLimit {
                break;
            }
            let mut snap = sim.checkpoint(&ck.config_hash, Time::from_ps(next_cp));
            snap.attribution = capture_attribution(&probe);
            (ck.write)(&snap)?;
            next_cp += every;
        }
    }
    Ok(sim.run())
}

/// The genuinely sharded body of [`run_checkpointed`].
#[allow(clippy::too_many_arguments)]
fn run_sharded_inner(
    cfg: NetworkConfig,
    traces: &TraceSet,
    probe: ProbeHandle,
    part: Partition,
    la: Duration,
    faults: Option<Arc<FaultSchedule>>,
    restore_from: Option<&Snapshot>,
    ckpt: Option<&CheckpointOpts<'_>>,
    speculation: Speculation,
) -> Result<(CommResult, Option<ShardProfile>), SnapshotError> {
    let n = cfg.topology.nodes();
    if let Some(snap) = restore_from {
        if snap.nodes != n {
            return Err(SnapshotError::NodesMismatch {
                found: snap.nodes,
                expected: n,
            });
        }
        seed_attribution(&probe, snap)?;
    }
    assert_eq!(
        traces.nodes(),
        n as usize,
        "trace set has {} nodes, topology {} needs {}",
        traces.nodes(),
        cfg.topology.label(),
        n
    );

    let k = part.shards();
    let barrier = WindowBarrier::new(k);
    // Per-shard-pair lookahead matrix, computed once per partition: the
    // window bound of shard `i` is `min over j of (mins[j] + L[j][i])`
    // instead of the global minimum plus the global lookahead.
    let pairla = PairLookahead::compute(&cfg.topology, &part, la);
    // Round-arrival gate: shards increment once per round; a shard may
    // compute its round-`r` local minimum only after all `k` increments of
    // round `r` — by then every cross-shard batch of the previous window
    // has been pushed into its destination channel.
    let gate = RoundGate::new();
    let mut txs = Vec::with_capacity(k);
    let mut rxs = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = sync_channel::<Batch>(channel_capacity(k));
        txs.push(tx);
        rxs.push(rx);
    }
    let want_probe = probe.is_enabled();
    let ckpt_sync = ckpt.map(|opts| CkptSync {
        opts,
        base_attr: restore_from.and_then(|s| s.attribution.clone()),
        want_attr: probe
            .with_stack(|s| s.attribution.is_some())
            .unwrap_or(false),
        slots: Mutex::new((0..k).map(|_| None).collect()),
        barrier: Barrier::new(k),
        failed: AtomicBool::new(false),
        error: Mutex::new(None),
    });

    let outs: Vec<ShardOut> = thread::scope(|scope| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(s, rx)| {
                let txs = txs.clone();
                let faults = faults.clone();
                let (part, barrier, gate, pairla) = (&part, &barrier, &gate, &pairla);
                let ckpt_sync = ckpt_sync.as_ref();
                scope.spawn(move || {
                    shard_worker(
                        s,
                        cfg,
                        traces,
                        part,
                        pairla,
                        barrier,
                        gate,
                        txs,
                        rx,
                        want_probe,
                        faults,
                        restore_from,
                        ckpt_sync,
                        speculation.threshold_ps(la),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    if let Some(sync) = &ckpt_sync {
        if let Some(e) = sync.error.lock().unwrap().take() {
            return Err(e);
        }
    }
    let (result, profile) = merge(outs, &probe);
    Ok((result, Some(profile)))
}

/// Cap on the speculation rollback backoff, in conservative rounds. The
/// penalty doubles on every rollback up to this cap and resets to zero on
/// a commit, so a workload where speculation keeps losing pays for at most
/// one rollback per `SPEC_BACKOFF_CAP` rounds in steady state.
const SPEC_BACKOFF_CAP: u64 = 1024;

/// An in-flight speculative window: the rollback snapshot plus everything
/// needed to validate, commit, or unwind it.
struct Spec {
    /// Exclusive end of the speculated region; an incoming message
    /// timestamped strictly below it invalidates the speculation.
    end_ps: u64,
    /// The promise to publish while this speculation is pending: the
    /// engine's queue-head time at launch, exactly what a conservative
    /// shard stalled at the same frontier would publish. The sped-ahead
    /// engine's own `next_event_time` is NOT a valid promise — a later
    /// arrival above `end_ps` can land below it and legally drag it
    /// back down after peers already built their frontiers on it.
    promise_ps: u64,
    /// Engine + world state at the conservative frontier the speculation
    /// started from.
    state: EngineState,
    /// Probe buffer length at the snapshot (rollback truncation point).
    probe_len: usize,
    /// Cross-shard output generated by the speculative run, withheld from
    /// the channels until the window commits.
    held: Vec<OutMsg>,
    /// Cross-shard input received while pending — already posted to the
    /// speculated engine, re-posted after a rollback (the wholesale
    /// restore wipes the queue), dropped on commit.
    incoming_log: Vec<OutMsg>,
}

/// Roll a mis-speculated (or stagnation-aborted) window back: restore the
/// engine to the conservative frontier, drop the speculated probe suffix
/// and held output, and re-post every cross-shard message received since
/// the snapshot (`extra` carries the current round's, including the
/// invalidating one).
fn unwind(
    engine: &mut Engine<NetMsg, NetWorld>,
    probe: &ProbeHandle,
    sp: Spec,
    extra: Vec<OutMsg>,
    profile: &mut ShardProfileEntry,
) {
    profile.spec_rollbacks += 1;
    load_engine_state(engine, &sp.state);
    let _ = probe.with_stack(|st| {
        if let Some(b) = st.buffer.as_mut() {
            b.truncate(sp.probe_len);
        }
    });
    for m in sp.incoming_log.into_iter().chain(extra) {
        engine.post_keyed(m.time, m.key, m.src, m.dst, m.msg);
    }
}

/// One shard's whole life: build its arena world, run the window loop,
/// collect local stats.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    s: usize,
    cfg: NetworkConfig,
    traces: &TraceSet,
    part: &Partition,
    pairla: &PairLookahead,
    barrier: &WindowBarrier,
    gate: &RoundGate,
    txs: Vec<SyncSender<Batch>>,
    rx: Receiver<Batch>,
    want_probe: bool,
    faults: Option<Arc<FaultSchedule>>,
    restore_from: Option<&Snapshot>,
    ckpt: Option<&CkptSync<'_>>,
    spec_threshold: Option<u64>,
) -> ShardOut {
    let n = part.nodes();
    let k = part.shards() as u64;
    let range = part.range(s);
    let local_mask: Arc<[bool]> = part.local_mask(s).into();
    let my_probe = if want_probe {
        ProbeHandle::new(ProbeStack::new().with_buffer())
    } else {
        ProbeHandle::disabled()
    };

    // Mirror component layout: the shard's world owns only the slabs of
    // its own node range, but reports the full `2n` id space, so
    // component ids, event keys and key-counter indexing match the serial
    // engine exactly. An event addressed to an unowned id panics inside
    // `NetWorld` — the window protocol routes every event to the shard
    // owning its destination.
    let outbox = std::rc::Rc::new(std::cell::RefCell::new(Vec::<OutMsg>::new()));
    let mut routers = Vec::with_capacity(range.len());
    let mut procs = Vec::with_capacity(range.len());
    for node in range.clone() {
        routers.push(
            Router::new(
                node,
                cfg.topology,
                cfg.link,
                cfg.router,
                (n + node) as CompId,
            )
            .with_probe(my_probe.clone())
            .with_faults(faults.clone())
            .with_cross_shard(CrossShard {
                local: Arc::clone(&local_mask),
                outbox: outbox.clone(),
            }),
        );
    }
    for node in range.clone() {
        procs.push(
            AbstractProcessor::new(node, traces.trace(node).shared_ops(), node as CompId, cfg)
                .with_probe(my_probe.clone())
                .with_faults(faults.clone()),
        );
    }
    let mut engine = Engine::with_world(NetWorld::new(n, range.start, routers, procs));
    match restore_from {
        Some(snap) => {
            // A restored shard overlays the snapshot instead of priming:
            // the queue, clock and counters are replaced wholesale with
            // the owned-destination slice of the snapshot (scripted fault
            // events at or after the instant are in that pending set
            // under their original keys, so nothing is posted here).
            // Shard 0 carries the snapshot's delivery count; the merge
            // sums per-shard counts, so the total matches an
            // uninterrupted run.
            let base = if s == 0 { snap.events_processed } else { 0 };
            restore_engine(&mut engine, snap, base)
                .unwrap_or_else(|e| panic!("shard {s} cannot restore: {e}"));
        }
        None => {
            // Post this shard's scripted fault events *before* priming,
            // exactly as the serial engine posts them before running:
            // fault events are self-events of their router, so posting
            // only the local nodes' events (in the same per-node schedule
            // order) consumes the same per-component key counters and
            // yields serial-identical event keys.
            if let Some(f) = &faults {
                for node in range.clone() {
                    for ev in f.events_for(node) {
                        engine.post(
                            ev.at,
                            node as CompId,
                            node as CompId,
                            NetMsg::Fault(ev.kind),
                        );
                    }
                }
            }
            engine.prime();
        }
    }

    // Checkpoint cadence: every shard tracks the same next-capture
    // instant (same cadence, same agreed windows), so all of them reach
    // every capture rendezvous in the same round.
    let (mut next_cp, every_ps) = match ckpt {
        Some(ck) => {
            let every = ck.opts.every.as_ps();
            assert!(every > 0, "checkpoint cadence must be non-zero");
            let first = match restore_from {
                Some(snap) => (snap.time.as_ps() / every + 1) * every,
                None => every,
            };
            (first, every)
        }
        None => (u64::MAX, 0),
    };

    let ks = part.shards();
    let mut round: u64 = 0;
    let mut inbox: Vec<Batch> = Vec::new();
    let mut profile = ShardProfileEntry {
        shard: s,
        ..ShardProfileEntry::default()
    };
    // Batch the outbox into one channel send per destination shard with
    // traffic. The channels never fill (see [`channel_capacity`]), so
    // there is no retry path.
    let do_flush = |msgs: &mut Vec<OutMsg>, profile: &mut ShardProfileEntry| {
        if msgs.is_empty() {
            return;
        }
        profile.cross_sent += msgs.len() as u64;
        let mut batches: Vec<Batch> = vec![Vec::new(); ks];
        for m in msgs.drain(..) {
            batches[part.shard_of(m.dst as u32)].push(m);
        }
        for (d, b) in batches.into_iter().enumerate() {
            if !b.is_empty() {
                profile.flush_batches += 1;
                ship(&txs[d], b, s, d);
            }
        }
    };
    let mut spec: Option<Spec> = None;
    let mut mins: Vec<u64> = Vec::new();
    let mut prev_mins: Vec<u64> = Vec::new();
    // Rollback backoff. Speculation is a bet that no peer sends into the
    // speculated region; when the bet loses, the shard pays a snapshot
    // restore plus a re-executed window — far more than the stall it
    // tried to hide. On comm-heavy workloads the bet loses almost every
    // round, so unbounded retry turns speculation into a large slowdown.
    // The penalty doubles on every rollback (capped) and suppresses new
    // launches for that many conservative rounds; a commit resets it, so
    // workloads where speculation wins keep speculating freely.
    let mut spec_penalty: u64 = 0;
    let mut spec_cooldown: u64 = 0;
    loop {
        // 1. Flush this round's cross-shard messages. During a pending
        //    speculation the outbox only ever holds validated output —
        //    the speculative suffix lives in `spec.held`.
        do_flush(&mut outbox.borrow_mut(), &mut profile);
        // 2. Round gate: wait (draining) until every shard has flushed.
        round += 1;
        gate.arrive();
        let gate_wait = std::time::Instant::now();
        gate.wait(round * k, || inbox.extend(rx.try_iter()));
        profile.barrier_wait_ns += gate_wait.elapsed().as_nanos() as u64;
        inbox.extend(rx.try_iter());
        // 3. Inject cross-shard arrivals at their exact serial queue
        //    keys. An arrival inside a speculated region proves the
        //    speculation wrong: rewind and re-execute with it.
        let mut incoming: Vec<OutMsg> = Vec::new();
        for b in inbox.drain(..) {
            incoming.extend(b);
        }
        profile.cross_recv += incoming.len() as u64;
        if let Some(mut sp) = spec.take() {
            if incoming.iter().any(|m| m.time.as_ps() < sp.end_ps) {
                unwind(&mut engine, &my_probe, sp, incoming, &mut profile);
                spec_penalty = (spec_penalty * 2).clamp(1, SPEC_BACKOFF_CAP);
                spec_cooldown = spec_penalty;
            } else {
                for m in &incoming {
                    engine.post_keyed(m.time, m.key, m.src, m.dst, m.msg);
                }
                sp.incoming_log.append(&mut incoming);
                spec = Some(sp);
            }
        } else {
            for m in incoming.drain(..) {
                engine.post_keyed(m.time, m.key, m.src, m.dst, m.msg);
            }
        }
        // 4. Publish this shard's promise and read every peer's. The
        //    promise must lower-bound (through the pair matrix) every
        //    message this shard may still deliver. Conservatively that is
        //    the queue head. While a speculation is pending it is the
        //    queue head *at launch*, frozen: every speculated event (and
        //    hence every held message, and the identical replayed prefix
        //    after a rollback) executes at or after that head, and
        //    rollback divergence is bounded by the trigger sender's own
        //    promise chained through real node paths — see DESIGN.md
        //    §17. Speculation therefore never widens what a peer may
        //    execute; it only precomputes this shard's side of a window
        //    the conservative protocol will eventually grant.
        let local_ps = match &spec {
            Some(sp) => sp.promise_ps,
            None => engine.next_event_time().map_or(IDLE_PS, |t| t.as_ps()),
        };
        let waited_ns = barrier.publish_mins_timed(s, local_ps, &mut mins);
        profile.barrier_wait_ns += waited_ns;
        let m_ps = mins.iter().copied().min().unwrap_or(IDLE_PS);
        if m_ps == IDLE_PS {
            // Every engine drained, nothing in flight. A shard with a
            // pending speculation publishes its finite frozen promise,
            // so all-idle implies no speculation is pending anywhere.
            debug_assert!(
                spec.is_none(),
                "a pending speculation publishes a finite promise"
            );
            break;
        }
        // 5. Validate a pending speculation against the new bound.
        let bound = pairla.window_end_ps(s, &mins);
        if let Some(sp) = spec.take() {
            if bound >= sp.end_ps {
                // Proven: no shard can ever send into the speculated
                // region. Release the held output (flushed next round).
                profile.spec_commits += 1;
                outbox.borrow_mut().extend(sp.held);
                spec_penalty = 0;
            } else if mins == prev_mins {
                // Stagnation: a full round with no published value moving
                // means every shard is frozen behind pending speculations
                // (an executing shard strictly raises its promise).
                // Revert to the conservative protocol to restore
                // liveness.
                unwind(&mut engine, &my_probe, sp, Vec::new(), &mut profile);
                spec_penalty = (spec_penalty * 2).clamp(1, SPEC_BACKOFF_CAP);
                spec_cooldown = spec_penalty;
            } else {
                spec = Some(sp);
            }
        }
        prev_mins.clone_from(&mins);
        // 6. Capture every checkpoint instant at or before the global
        //    minimum: all events before it were processed (windows and
        //    speculations are clamped to the cadence), all pending events
        //    are at or after it. Every shard sees the same `mins` and
        //    cadence, so all deposit pieces for the same instants in the
        //    same rounds. A speculation pending here is impossible: its
        //    end is clamped to `next_cp <= m < bound`, which commits it
        //    in step 5.
        if let Some(ck) = ckpt {
            while next_cp <= m_ps {
                debug_assert!(
                    spec.is_none(),
                    "speculation never crosses a capture instant"
                );
                // Deliver every in-flight message first: a speculative
                // batch committed this round still sits in the outbox,
                // and the composed snapshot must show it in its
                // destination's queue exactly as a serial capture would.
                do_flush(&mut outbox.borrow_mut(), &mut profile);
                ck.barrier.wait();
                inbox.extend(rx.try_iter());
                let mut late: Vec<OutMsg> = Vec::new();
                for b in inbox.drain(..) {
                    late.extend(b);
                }
                profile.cross_recv += late.len() as u64;
                for m in late {
                    engine.post_keyed(m.time, m.key, m.src, m.dst, m.msg);
                }
                let at = Time::from_ps(next_cp);
                let piece = capture_piece(&engine, &ck.opts.config_hash, at);
                let buffered = if ck.want_attr {
                    my_probe
                        .with_stack(|st| st.buffer.as_ref().map(|b| b.events().to_vec()))
                        .flatten()
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                ck.slots.lock().unwrap()[s] = Some((piece, buffered));
                // First rendezvous: every piece is deposited. Second:
                // shard 0 has consumed them — without it, a fast shard
                // could overwrite its slot with the *next* instant's
                // piece before the compose reads this one.
                ck.barrier.wait();
                if s == 0 {
                    ck.compose_and_write();
                }
                ck.barrier.wait();
                next_cp += every_ps;
            }
        }
        // 7. Execute the window. Events *at* the window end belong to the
        //    next round (times are integer picoseconds, so `end - 1` is
        //    exact). While a speculation is pending the engine has
        //    already run ahead; the shard stalls until validation.
        profile.windows += 1;
        if spec.is_none() {
            let end_ps = bound.min(next_cp);
            let nev = engine.next_event_time().map(|t| t.as_ps());
            if let Some(start) = nev {
                if start < end_ps {
                    let work = std::time::Instant::now();
                    engine.run_until(Time::from_ps(end_ps - 1));
                    profile.work_ns += work.elapsed().as_nanos() as u64;
                    profile.record_width(end_ps - start);
                }
            }
            // 8. Launch a speculative window when the proven bound left
            //    less than a threshold of runway: snapshot, run ahead to
            //    `next event + threshold` (never across a checkpoint
            //    instant), and hold all cross-shard output back until the
            //    bound catches up.
            if let Some(thr) = spec_threshold {
                if spec_cooldown > 0 {
                    spec_cooldown -= 1;
                    // Backing off after recent rollbacks — see the
                    // penalty bookkeeping at the unwind sites.
                } else {
                    let start = nev.unwrap_or(end_ps);
                    let spec_end = start.saturating_add(thr).min(next_cp);
                    if end_ps != u64::MAX && end_ps.saturating_sub(start) < thr && spec_end > end_ps
                    {
                        if let Some(head) = engine.next_event_time() {
                            if head.as_ps() < spec_end {
                                let mark = outbox.borrow().len();
                                let state = save_engine_state(&engine);
                                let probe_len = my_probe
                                    .with_stack(|st| st.buffer.as_ref().map_or(0, |b| b.len()))
                                    .unwrap_or(0);
                                let work = std::time::Instant::now();
                                engine.run_until(Time::from_ps(spec_end - 1));
                                profile.work_ns += work.elapsed().as_nanos() as u64;
                                profile.record_width(spec_end - head.as_ps());
                                let held = outbox.borrow_mut().split_off(mark);
                                spec = Some(Spec {
                                    end_ps: spec_end,
                                    promise_ps: head.as_ps(),
                                    state,
                                    probe_len,
                                    held,
                                    incoming_log: Vec::new(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    profile.events = engine.events_processed();

    let mut nodes = Vec::with_capacity(range.len());
    let world = engine.world();
    for node in range {
        nodes.push(NodeCommStats {
            node,
            proc: world.proc(node).stats.clone(),
            router: world.router(node).snapshot_stats(),
        });
    }
    ShardOut {
        nodes,
        events: engine.events_processed(),
        probe_events: my_probe.take_buffer().unwrap_or_default(),
        profile,
    }
}

/// Fold per-shard outputs into one [`CommResult`], mirroring
/// `CommSim::collect` field for field (shards are in node order, so the
/// merge order — and hence every merged histogram — matches the serial
/// collection exactly).
fn merge(outs: Vec<ShardOut>, probe: &ProbeHandle) -> (CommResult, ShardProfile) {
    let mut nodes = Vec::new();
    let mut events = 0;
    let mut probe_events = Vec::new();
    let mut profile = ShardProfile::default();
    for out in outs {
        events += out.events;
        probe_events.extend(out.probe_events);
        nodes.extend(out.nodes);
        profile.shards.push(out.profile);
    }
    if probe.is_enabled() {
        canonical_sort(&mut probe_events);
        for ev in &probe_events {
            probe.replay(ev);
        }
    }
    // The window loop only terminates once every shard's event set has
    // drained, so — unlike a mid-run snapshot — unfinished here means
    // deadlocked, exactly as in the serial terminal collect.
    (CommResult::from_nodes(nodes, events, true), profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use mermaid_ops::{NodeId, Operation};

    fn trace_set(n: u32, f: impl Fn(NodeId) -> Vec<Operation>) -> TraceSet {
        let mut ts = TraceSet::new(n as usize);
        for node in 0..n {
            ts.trace_mut(node).ops = f(node);
        }
        ts
    }

    fn exchange_traces(n: u32) -> TraceSet {
        trace_set(n, |node| {
            vec![
                Operation::ASend {
                    bytes: 3000,
                    dst: (node + 1) % n,
                },
                Operation::Recv {
                    src: (node + n - 1) % n,
                },
                Operation::Compute { ps: 10_000 },
                Operation::ASend {
                    bytes: 500,
                    dst: (node + n / 2) % n,
                },
                Operation::Recv {
                    src: (node + n - n / 2) % n,
                },
            ]
        })
    }

    fn assert_identical(a: &CommResult, b: &CommResult) {
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.all_done, b.all_done);
        assert_eq!(a.deadlocked, b.deadlocked);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.total_link_busy(), b.total_link_busy());
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.proc.finished_at, y.proc.finished_at, "node {}", x.node);
            assert_eq!(x.proc.compute, y.proc.compute);
            assert_eq!(x.proc.send_block, y.proc.send_block);
            assert_eq!(x.proc.recv_block, y.proc.recv_block);
            assert_eq!(x.proc.msgs_sent, y.proc.msgs_sent);
            assert_eq!(x.proc.msgs_received, y.proc.msgs_received);
            assert_eq!(x.router.forwarded, y.router.forwarded);
            assert_eq!(x.router.delivered, y.router.delivered);
            assert_eq!(x.router.link_wait, y.router.link_wait, "node {}", x.node);
            assert_eq!(x.router.link_busy, y.router.link_busy);
        }
        assert_eq!(a.msg_latency.count(), b.msg_latency.count());
        assert_eq!(a.msg_latency.max(), b.msg_latency.max());
    }

    #[test]
    fn sharded_matches_serial_on_a_ring() {
        let cfg = NetworkConfig::test(Topology::Ring(8));
        let ts = exchange_traces(8);
        let serial = CommSim::new(cfg, &ts).run();
        for shards in [2, 3, 8] {
            let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), shards);
            assert_identical(&serial, &sh);
        }
    }

    #[test]
    fn sharded_matches_serial_on_mesh_and_torus() {
        for topo in [
            Topology::Mesh2D { w: 4, h: 4 },
            Topology::Torus2D { w: 4, h: 4 },
        ] {
            let cfg = NetworkConfig::test(topo);
            let ts = exchange_traces(16);
            let serial = CommSim::new(cfg, &ts).run();
            let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), 4);
            assert_identical(&serial, &sh);
        }
    }

    #[test]
    fn sharded_matches_serial_with_adaptive_routing_and_contention() {
        let mut cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 4 });
        cfg.router.routing = crate::config::Routing::AdaptiveMinimal;
        let ts = trace_set(16, |node| {
            vec![
                Operation::ASend {
                    bytes: 64 * 1024,
                    dst: 15 - node,
                },
                Operation::Recv { src: 15 - node },
            ]
        });
        let serial = CommSim::new(cfg, &ts).run();
        let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), 4);
        assert_identical(&serial, &sh);
    }

    #[test]
    fn sharded_reports_deadlocks_like_serial() {
        let cfg = NetworkConfig::test(Topology::Ring(4));
        let ts = trace_set(4, |node| match node {
            0 => vec![Operation::Recv { src: 1 }], // nobody sends
            _ => vec![Operation::Compute { ps: 100 }],
        });
        let serial = CommSim::new(cfg, &ts).run();
        let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), 2);
        assert_identical(&serial, &sh);
        assert_eq!(sh.deadlocked, vec![0]);
    }

    #[test]
    fn one_shard_falls_back_to_serial() {
        let cfg = NetworkConfig::test(Topology::Ring(4));
        let ts = exchange_traces(4);
        let serial = CommSim::new(cfg, &ts).run();
        let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), 1);
        assert_identical(&serial, &sh);
    }

    #[test]
    fn probe_stream_matches_serial_model_events() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);

        let serial_probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let serial = CommSim::new_with_probe(cfg, &ts, serial_probe.clone()).run();
        let mut serial_events: Vec<SimEvent> = serial_probe
            .take_buffer()
            .unwrap()
            .into_iter()
            .filter(|e| !e.is_engine_internal())
            .collect();
        canonical_sort(&mut serial_events);

        let sharded_probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let sharded = run_sharded(cfg, &ts, sharded_probe.clone(), 3);
        let sharded_events = sharded_probe.take_buffer().unwrap();
        // Replay is already canonical; assert bit-identical streams.
        assert_eq!(serial_events, sharded_events);
        assert!(!sharded_events.is_empty());
        assert_identical(&serial, &sharded);
    }

    #[test]
    fn profiled_run_matches_serial_and_accounts_for_every_shard() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let serial = CommSim::new(cfg, &ts).run();
        let (sh, profile) =
            run_sharded_with_faults_profiled(cfg, &ts, ProbeHandle::disabled(), 4, None);
        assert_identical(&serial, &sh);
        let profile = profile.expect("a real sharded run self-profiles");
        assert_eq!(profile.shards.len(), 4);
        for (i, p) in profile.shards.iter().enumerate() {
            assert_eq!(p.shard, i);
            assert!(p.windows > 0, "shard {i} executed no window");
        }
        // Every engine event and every cross-shard message is attributed
        // to exactly one shard.
        assert_eq!(
            profile.shards.iter().map(|p| p.events).sum::<u64>(),
            sh.events
        );
        let sent = profile.total_cross_msgs();
        let recv = profile.shards.iter().map(|p| p.cross_recv).sum::<u64>();
        assert_eq!(sent, recv, "cross-shard channels conserve messages");
        assert!(sent > 0, "a split torus must exchange messages");
        assert!(profile.barrier_share_ppm() <= 1_000_000);
        let table = profile.render();
        assert!(table.contains("ev/window"));
        assert!(table.lines().count() >= 5);
    }

    /// Run sharded under an explicit speculative-window policy.
    fn run_with_policy(
        cfg: NetworkConfig,
        ts: &TraceSet,
        shards: usize,
        policy: Speculation,
    ) -> (CommResult, ShardProfile) {
        let (r, profile) = run_checkpointed_with(
            cfg,
            ts,
            ProbeHandle::disabled(),
            shards,
            None,
            None,
            None,
            policy,
        )
        .expect("a run without checkpoint options cannot fail");
        (r, profile.expect("a real sharded run self-profiles"))
    }

    #[test]
    fn speculation_off_is_bit_identical_and_never_speculates() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 4 });
        let ts = exchange_traces(16);
        let serial = CommSim::new(cfg, &ts).run();
        let (sh, profile) = run_with_policy(cfg, &ts, 4, Speculation::Off);
        assert_identical(&serial, &sh);
        assert_eq!(profile.total_spec_commits(), 0);
        assert_eq!(profile.total_spec_rollbacks(), 0);
    }

    #[test]
    fn forced_speculation_is_bit_identical_and_counted() {
        // A threshold far beyond every conservative window forces a
        // speculative attempt whenever a shard has pending work, so the
        // commit/rollback machinery is genuinely exercised — and the
        // results must still match the serial run exactly.
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 4 });
        let ts = exchange_traces(16);
        let serial = CommSim::new(cfg, &ts).run();
        let aggressive = Speculation::Threshold(Duration::from_ps(1_000_000_000));
        let (sh, profile) = run_with_policy(cfg, &ts, 4, aggressive);
        assert_identical(&serial, &sh);
        assert!(
            profile.total_spec_commits() + profile.total_spec_rollbacks() > 0,
            "an aggressive threshold must trigger speculation"
        );
        // The flush path batches: cross-shard traffic moves in at most one
        // batch per destination per flush point.
        assert!(profile.total_flush_batches() > 0);
        assert!(profile.total_flush_batches() <= profile.total_cross_msgs());
    }

    #[test]
    fn forced_speculation_keeps_the_probe_stream_exact() {
        // Rollbacks must leave no trace in the probe buffer (speculated
        // events are truncated before re-execution).
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let serial_probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let serial = CommSim::new_with_probe(cfg, &ts, serial_probe.clone()).run();
        let mut serial_events: Vec<SimEvent> = serial_probe
            .take_buffer()
            .unwrap()
            .into_iter()
            .filter(|e| !e.is_engine_internal())
            .collect();
        canonical_sort(&mut serial_events);

        let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let (sh, _) = run_checkpointed_with(
            cfg,
            &ts,
            probe.clone(),
            3,
            None,
            None,
            None,
            Speculation::Threshold(Duration::from_ps(1_000_000_000)),
        )
        .expect("a run without checkpoint options cannot fail");
        let sharded_events = probe.take_buffer().unwrap();
        assert_eq!(serial_events, sharded_events);
        assert!(!sharded_events.is_empty());
        assert_identical(&serial, &sh);
    }

    #[test]
    fn window_histogram_accounts_for_every_window() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let (_, profile) = run_with_policy(cfg, &ts, 3, Speculation::default());
        let hist = profile.window_hist();
        let total: u64 = hist.iter().sum();
        let windows: u64 = profile.shards.iter().map(|p| p.windows).sum();
        // A round records at most two widths: the conservative slice it
        // executed, plus a speculative window launched in the same round
        // (which later resolves as exactly one commit or rollback).
        let launches = profile.total_spec_commits() + profile.total_spec_rollbacks();
        assert!(total > 0, "a finite run records window widths");
        assert!(
            total <= windows + launches,
            "histogram counts executed windows only ({total} vs {windows} rounds + {launches} speculative launches)"
        );
        let rendered = profile.render();
        assert!(rendered.contains("window widths (log2):"), "{rendered}");
        assert!(rendered.contains("spec-commit"), "{rendered}");
    }

    #[test]
    fn serial_fallback_yields_no_profile() {
        let cfg = NetworkConfig::test(Topology::Ring(4));
        let ts = exchange_traces(4);
        let (_, profile) =
            run_sharded_with_faults_profiled(cfg, &ts, ProbeHandle::disabled(), 1, None);
        assert!(profile.is_none());
    }

    #[test]
    fn more_shards_than_nodes_still_exact() {
        let cfg = NetworkConfig::test(Topology::Ring(3));
        let ts = exchange_traces(3);
        let serial = CommSim::new(cfg, &ts).run();
        let sh = run_sharded(cfg, &ts, ProbeHandle::disabled(), 16);
        assert_identical(&serial, &sh);
    }

    /// Run with a collecting checkpoint sink; return the result and every
    /// snapshot file rendered.
    fn run_collecting(
        cfg: NetworkConfig,
        ts: &TraceSet,
        shards: usize,
        every_ps: u64,
        restore_from: Option<&Snapshot>,
    ) -> (CommResult, Vec<String>) {
        let files = Mutex::new(Vec::new());
        let write = |snap: &Snapshot| {
            files.lock().unwrap().push(snap.to_file_string());
            Ok(())
        };
        let opts = CheckpointOpts {
            every: Duration::from_ps(every_ps),
            config_hash: "00000000deadbeef".into(),
            write: &write,
        };
        let (r, _) = run_checkpointed(
            cfg,
            ts,
            ProbeHandle::disabled(),
            shards,
            None,
            restore_from,
            Some(&opts),
        )
        .expect("collecting sink cannot fail");
        (r, files.into_inner().unwrap())
    }

    #[test]
    fn sharded_checkpoint_files_are_byte_identical_to_serial() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let plain = CommSim::new(cfg, &ts).run();
        let (serial, serial_files) = run_collecting(cfg, &ts, 1, 3_000, None);
        let (sharded, sharded_files) = run_collecting(cfg, &ts, 3, 3_000, None);
        assert_identical(&plain, &serial);
        assert_identical(&plain, &sharded);
        assert!(
            !serial_files.is_empty(),
            "the run must cross at least one checkpoint instant"
        );
        assert_eq!(
            serial_files.len(),
            sharded_files.len(),
            "both modes capture the same instants"
        );
        for (a, b) in serial_files.iter().zip(&sharded_files) {
            assert_eq!(a, b, "composed shard capture differs from serial capture");
        }
    }

    #[test]
    fn restore_into_sharded_run_matches_uninterrupted() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let plain = CommSim::new(cfg, &ts).run();
        let (_, files) = run_collecting(cfg, &ts, 3, 3_000, None);
        for file in &files {
            let snap = Snapshot::parse(file).expect("own capture parses");
            // Restore into a sharded run…
            let (sh, _) = run_checkpointed(
                cfg,
                &ts,
                ProbeHandle::disabled(),
                3,
                None,
                Some(&snap),
                None,
            )
            .expect("restore succeeds");
            assert_identical(&plain, &sh);
            // …and into a serial one.
            let (serial, _) = run_checkpointed(
                cfg,
                &ts,
                ProbeHandle::disabled(),
                1,
                None,
                Some(&snap),
                None,
            )
            .expect("restore succeeds");
            assert_identical(&plain, &serial);
        }
    }

    #[test]
    fn restored_run_resumes_the_checkpoint_cadence() {
        let cfg = NetworkConfig::test(Topology::Ring(8));
        let ts = exchange_traces(8);
        let (_, full_files) = run_collecting(cfg, &ts, 3, 2_000, None);
        assert!(full_files.len() >= 2, "need at least two capture instants");
        let first = Snapshot::parse(&full_files[0]).unwrap();
        let (_, resumed_files) = run_collecting(cfg, &ts, 3, 2_000, Some(&first));
        assert_eq!(resumed_files, full_files[1..].to_vec());
    }

    #[test]
    fn failed_checkpoint_write_fails_the_run() {
        let cfg = NetworkConfig::test(Topology::Ring(8));
        let ts = exchange_traces(8);
        let write = |_: &Snapshot| {
            Err(SnapshotError::Io {
                verb: "write",
                path: "/nowhere/ckpt.snap".into(),
                detail: "disk full".into(),
            })
        };
        let opts = CheckpointOpts {
            every: Duration::from_ps(2_000),
            config_hash: "00000000deadbeef".into(),
            write: &write,
        };
        for shards in [1, 3] {
            let err = run_checkpointed(
                cfg,
                &ts,
                ProbeHandle::disabled(),
                shards,
                None,
                None,
                Some(&opts),
            )
            .expect_err("a failing sink must surface");
            assert!(err.to_string().contains("disk full"), "{err}");
        }
    }

    #[test]
    fn sharded_attribution_capture_matches_serial() {
        let cfg = NetworkConfig::test(Topology::Torus2D { w: 4, h: 2 });
        let ts = exchange_traces(8);
        let capture_with = |shards: usize| {
            let files = Mutex::new(Vec::new());
            let write = |snap: &Snapshot| {
                files.lock().unwrap().push(snap.to_file_string());
                Ok(())
            };
            let opts = CheckpointOpts {
                every: Duration::from_ps(3_000),
                config_hash: "00000000deadbeef".into(),
                write: &write,
            };
            let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
            let (r, _) = run_checkpointed(cfg, &ts, probe.clone(), shards, None, None, Some(&opts))
                .expect("capture succeeds");
            let json = probe
                .with_stack(|s| {
                    s.attribution
                        .as_ref()
                        .map(|a| a.report(r.finish.as_ps()).to_json())
                })
                .flatten()
                .expect("sink attached");
            (files.into_inner().unwrap(), json)
        };
        let (serial_files, serial_json) = capture_with(1);
        let (sharded_files, sharded_json) = capture_with(3);
        assert_eq!(serial_json, sharded_json);
        assert_eq!(serial_files, sharded_files);
        assert!(serial_files.iter().all(|f| f.contains("\nattr ")));
        // Restoring from a snapshot with attribution reproduces the
        // uninterrupted report.
        let snap = Snapshot::parse(&serial_files[0]).unwrap();
        let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
        let (r, _) = run_checkpointed(cfg, &ts, probe.clone(), 3, None, Some(&snap), None)
            .expect("restore succeeds");
        let json = probe
            .with_stack(|s| {
                s.attribution
                    .as_ref()
                    .map(|a| a.report(r.finish.as_ps()).to_json())
            })
            .flatten()
            .unwrap();
        assert_eq!(json, serial_json);
    }

    #[test]
    fn attribution_probe_without_snapshot_record_is_refused() {
        let cfg = NetworkConfig::test(Topology::Ring(8));
        let ts = exchange_traces(8);
        let (_, files) = run_collecting(cfg, &ts, 3, 2_000, None);
        let snap = Snapshot::parse(&files[0]).unwrap();
        assert!(snap.attribution.is_none());
        let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
        for shards in [1, 3] {
            let err = run_checkpointed(cfg, &ts, probe.clone(), shards, None, Some(&snap), None)
                .expect_err("a silent partial attribution report must be refused");
            assert!(err.to_string().contains("attribution"), "{err}");
        }
    }
}
