//! Interconnect topologies with deterministic minimal routing.
//!
//! "The nodes are connected in a topology reflecting the physical
//! interconnect of the multicomputer" (paper, Section 4.2). Routing is
//! deterministic and minimal: dimension-order (X-then-Y) on meshes and
//! tori, e-cube on hypercubes, shortest-way on rings. Deterministic
//! routing keeps simulations reproducible and is what the transputer-era
//! machines Mermaid targeted actually used.

use mermaid_ops::NodeId;
use serde::{Deserialize, Serialize};

/// The physical interconnect of the multicomputer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A bidirectional ring of `n` nodes.
    Ring(u32),
    /// A `w × h` 2-D mesh (no wraparound), node id = y*w + x.
    Mesh2D { w: u32, h: u32 },
    /// A `w × h` 2-D torus (wraparound), node id = y*w + x.
    Torus2D { w: u32, h: u32 },
    /// A `2^dim`-node hypercube.
    Hypercube { dim: u32 },
    /// Every node links to every other node.
    FullyConnected(u32),
    /// Node 0 is the hub; all others are leaves.
    Star(u32),
}

/// Largest node count any topology may declare (2^20, matching the
/// hypercube dimension limit). Keeps `u32` node-id arithmetic and
/// `as usize` index casts safe everywhere downstream.
pub const MAX_NODES: u64 = 1 << 20;

impl Topology {
    /// Number of nodes.
    ///
    /// Saturates rather than wrapping for shapes that fail
    /// [`Topology::try_validate`] (e.g. a `100000x100000` mesh), so callers
    /// that validate first never observe a wrapped count.
    pub fn nodes(&self) -> u32 {
        match *self {
            Topology::Ring(n) | Topology::FullyConnected(n) | Topology::Star(n) => n,
            Topology::Mesh2D { w, h } | Topology::Torus2D { w, h } => w.saturating_mul(h),
            Topology::Hypercube { dim } => 1u32.checked_shl(dim).unwrap_or(u32::MAX),
        }
    }

    /// Validate the shape, returning a user-facing error for degenerate or
    /// oversized configurations instead of panicking.
    pub fn try_validate(&self) -> Result<(), String> {
        let total: u64 = match *self {
            Topology::Ring(n) => {
                if n < 2 {
                    return Err(format!("ring needs ≥2 nodes (got {n})"));
                }
                n as u64
            }
            Topology::Mesh2D { w, h } | Topology::Torus2D { w, h } => {
                if w < 1 || h < 1 {
                    return Err(format!("mesh/torus dimensions must be ≥1 (got {w}x{h})"));
                }
                let total = w as u64 * h as u64;
                if total < 2 {
                    return Err(format!("mesh/torus needs ≥2 nodes (got {w}x{h})"));
                }
                total
            }
            Topology::Hypercube { dim } => {
                if !(1..=20).contains(&dim) {
                    return Err(format!("hypercube dimension must be in 1..=20 (got {dim})"));
                }
                1u64 << dim
            }
            Topology::FullyConnected(n) => {
                if n < 2 {
                    return Err(format!("full mesh needs ≥2 nodes (got {n})"));
                }
                n as u64
            }
            Topology::Star(n) => {
                if n < 2 {
                    return Err(format!("star needs ≥2 nodes (got {n})"));
                }
                n as u64
            }
        };
        if total > MAX_NODES {
            return Err(format!(
                "{} has {total} nodes, exceeding the supported maximum of {MAX_NODES}",
                self.label()
            ));
        }
        Ok(())
    }

    /// Validate the shape (panics on degenerate configurations).
    ///
    /// Wrapper over [`Topology::try_validate`] for model-internal call
    /// sites; user input paths (the CLI) use `try_validate` directly.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid topology: {e}");
        }
    }

    /// The neighbours of `node` (each is one physical link).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let n = self.nodes();
        assert!(node < n, "node {node} out of range ({n} nodes)");
        match *self {
            Topology::Ring(n) => {
                if n == 2 {
                    vec![(node + 1) % 2]
                } else {
                    vec![(node + 1) % n, (node + n - 1) % n]
                }
            }
            Topology::Mesh2D { w, h } => {
                let (x, y) = (node % w, node / w);
                let mut v = Vec::with_capacity(4);
                if x + 1 < w {
                    v.push(node + 1);
                }
                if x > 0 {
                    v.push(node - 1);
                }
                if y + 1 < h {
                    v.push(node + w);
                }
                if y > 0 {
                    v.push(node - w);
                }
                v
            }
            Topology::Torus2D { w, h } => {
                let (x, y) = (node % w, node / w);
                let mut v = Vec::with_capacity(4);
                if w > 1 {
                    v.push(y * w + (x + 1) % w);
                    if w > 2 {
                        v.push(y * w + (x + w - 1) % w);
                    }
                }
                if h > 1 {
                    v.push(((y + 1) % h) * w + x);
                    if h > 2 {
                        v.push(((y + h - 1) % h) * w + x);
                    }
                }
                v
            }
            Topology::Hypercube { dim } => (0..dim).map(|d| node ^ (1 << d)).collect(),
            Topology::FullyConnected(n) => (0..n).filter(|&m| m != node).collect(),
            Topology::Star(n) => {
                if node == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
        }
    }

    /// The next hop from `from` towards `to` under the deterministic
    /// minimal routing function. Panics when `from == to`.
    pub fn route_next(&self, from: NodeId, to: NodeId) -> NodeId {
        assert_ne!(from, to, "routing a packet to its own node");
        let n = self.nodes();
        assert!(from < n && to < n, "node out of range");
        match *self {
            Topology::Ring(n) => {
                let fwd = (to + n - from) % n; // hops going +1
                let bwd = (from + n - to) % n; // hops going -1
                if fwd <= bwd {
                    (from + 1) % n
                } else {
                    (from + n - 1) % n
                }
            }
            Topology::Mesh2D { w, .. } => {
                let (fx, fy) = (from % w, from / w);
                let (tx, ty) = (to % w, to / w);
                // Dimension order: X first, then Y.
                if fx < tx {
                    from + 1
                } else if fx > tx {
                    from - 1
                } else if fy < ty {
                    from + w
                } else {
                    from - w
                }
            }
            Topology::Torus2D { w, h } => {
                let (fx, fy) = (from % w, from / w);
                let (tx, ty) = (to % w, to / w);
                if fx != tx {
                    let fwd = (tx + w - fx) % w;
                    let bwd = (fx + w - tx) % w;
                    let nx = if fwd <= bwd {
                        (fx + 1) % w
                    } else {
                        (fx + w - 1) % w
                    };
                    fy * w + nx
                } else {
                    let fwd = (ty + h - fy) % h;
                    let bwd = (fy + h - ty) % h;
                    let ny = if fwd <= bwd {
                        (fy + 1) % h
                    } else {
                        (fy + h - 1) % h
                    };
                    ny * w + fx
                }
            }
            Topology::Hypercube { .. } => {
                // e-cube: correct the lowest differing dimension.
                let diff = from ^ to;
                from ^ (1 << diff.trailing_zeros())
            }
            Topology::FullyConnected(_) => to,
            Topology::Star(_) => {
                if from == 0 {
                    to
                } else {
                    0
                }
            }
        }
    }

    /// All neighbours of `from` that lie on some minimal path to `to`
    /// (the candidate set for adaptive minimal routing). Non-empty for any
    /// `from != to`; always contains [`Topology::route_next`]'s choice.
    pub fn minimal_next_hops(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        assert_ne!(from, to, "routing a packet to its own node");
        let d = self.distance(from, to);
        self.neighbors(from)
            .into_iter()
            .filter(|&n| self.distance(n, to) < d)
            .collect()
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Ring(n) => {
                let fwd = (b + n - a) % n;
                fwd.min(n - fwd)
            }
            Topology::Mesh2D { w, .. } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Torus2D { w, h } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let dx = ax.abs_diff(bx).min(w - ax.abs_diff(bx));
                let dy = ay.abs_diff(by).min(h - ay.abs_diff(by));
                dx + dy
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones(),
            Topology::FullyConnected(_) => 1,
            Topology::Star(_) => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// The network diameter (maximum distance between any pair).
    pub fn diameter(&self) -> u32 {
        match *self {
            Topology::Ring(n) => n / 2,
            Topology::Mesh2D { w, h } => (w - 1) + (h - 1),
            Topology::Torus2D { w, h } => w / 2 + h / 2,
            Topology::Hypercube { dim } => dim,
            Topology::FullyConnected(_) => 1,
            Topology::Star(_) => 2,
        }
    }

    /// Total number of unidirectional links.
    pub fn link_count(&self) -> u32 {
        (0..self.nodes())
            .map(|n| self.neighbors(n).len() as u32)
            .sum()
    }

    /// Human-readable name for reports.
    pub fn label(&self) -> String {
        match *self {
            Topology::Ring(n) => format!("ring({n})"),
            Topology::Mesh2D { w, h } => format!("mesh({w}x{h})"),
            Topology::Torus2D { w, h } => format!("torus({w}x{h})"),
            Topology::Hypercube { dim } => format!("hypercube({dim})"),
            Topology::FullyConnected(n) => format!("full({n})"),
            Topology::Star(n) => format!("star({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Ring(7),
            Topology::Mesh2D { w: 4, h: 3 },
            Topology::Torus2D { w: 4, h: 4 },
            Topology::Hypercube { dim: 4 },
            Topology::FullyConnected(6),
            Topology::Star(5),
        ]
    }

    #[test]
    fn node_counts() {
        assert_eq!(Topology::Ring(7).nodes(), 7);
        assert_eq!(Topology::Mesh2D { w: 4, h: 3 }.nodes(), 12);
        assert_eq!(Topology::Hypercube { dim: 4 }.nodes(), 16);
        assert_eq!(Topology::Star(5).nodes(), 5);
    }

    #[test]
    fn neighbor_relations_are_symmetric() {
        for topo in all_topologies() {
            for a in 0..topo.nodes() {
                for b in topo.neighbors(a) {
                    assert!(
                        topo.neighbors(b).contains(&a),
                        "{}: {a}->{b} not symmetric",
                        topo.label()
                    );
                    assert_ne!(a, b, "self-link in {}", topo.label());
                }
            }
        }
    }

    #[test]
    fn routing_reaches_destination_in_distance_hops() {
        for topo in all_topologies() {
            let n = topo.nodes();
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let mut cur = src;
                    let mut hops = 0;
                    while cur != dst {
                        let next = topo.route_next(cur, dst);
                        assert!(
                            topo.neighbors(cur).contains(&next),
                            "{}: route {cur}->{next} is not a link",
                            topo.label()
                        );
                        cur = next;
                        hops += 1;
                        assert!(hops <= n, "routing loop in {}", topo.label());
                    }
                    assert_eq!(
                        hops,
                        topo.distance(src, dst),
                        "{}: non-minimal route {src}->{dst}",
                        topo.label()
                    );
                }
            }
        }
    }

    #[test]
    fn distances_are_metric() {
        for topo in all_topologies() {
            let n = topo.nodes();
            for a in 0..n {
                assert_eq!(topo.distance(a, a), 0);
                for b in 0..n {
                    assert_eq!(topo.distance(a, b), topo.distance(b, a));
                    assert!(topo.distance(a, b) <= topo.diameter());
                }
            }
        }
    }

    #[test]
    fn mesh_routes_x_before_y() {
        let m = Topology::Mesh2D { w: 4, h: 4 };
        // From (0,0)=0 to (2,2)=10: first hops go +x.
        assert_eq!(m.route_next(0, 10), 1);
        assert_eq!(m.route_next(1, 10), 2);
        // x aligned → +y.
        assert_eq!(m.route_next(2, 10), 6);
    }

    #[test]
    fn ring_takes_the_short_way() {
        let r = Topology::Ring(8);
        assert_eq!(r.route_next(0, 3), 1); // 3 fwd vs 5 bwd
        assert_eq!(r.route_next(0, 6), 7); // 6 fwd vs 2 bwd
        assert_eq!(r.route_next(0, 4), 1); // tie → forward
    }

    #[test]
    fn hypercube_ecube_fixes_lowest_bit_first() {
        let h = Topology::Hypercube { dim: 3 };
        // 000 → 110: first fix bit 1 (lowest differing), giving 010.
        assert_eq!(h.route_next(0b000, 0b110), 0b010);
        assert_eq!(h.route_next(0b010, 0b110), 0b110);
    }

    #[test]
    fn star_routes_via_hub() {
        let s = Topology::Star(5);
        assert_eq!(s.route_next(3, 4), 0);
        assert_eq!(s.route_next(0, 4), 4);
        assert_eq!(s.distance(3, 4), 2);
    }

    #[test]
    fn minimal_next_hops_contain_the_deterministic_choice() {
        for topo in all_topologies() {
            let n = topo.nodes();
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let hops = topo.minimal_next_hops(src, dst);
                    assert!(!hops.is_empty(), "{}: empty candidate set", topo.label());
                    assert!(
                        hops.contains(&topo.route_next(src, dst)),
                        "{}: deterministic hop not minimal {src}->{dst}",
                        topo.label()
                    );
                    for h in hops {
                        assert_eq!(topo.distance(h, dst) + 1, topo.distance(src, dst));
                    }
                }
            }
        }
    }

    #[test]
    fn torus_offers_multiple_minimal_paths() {
        let t = Topology::Torus2D { w: 4, h: 4 };
        // Corner to opposite corner: both dimensions need correcting, so
        // at least two candidates exist.
        assert!(t.minimal_next_hops(0, 15 - 5).len() >= 2);
    }

    #[test]
    fn two_node_ring_has_one_link_each_way() {
        let r = Topology::Ring(2);
        assert_eq!(r.neighbors(0), vec![1]);
        assert_eq!(r.neighbors(1), vec![0]);
        assert_eq!(r.route_next(0, 1), 1);
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::Torus2D { w: 4, h: 1 };
        // 0 → 3 is one hop backwards through the wraparound.
        assert_eq!(t.distance(0, 3), 1);
        assert_eq!(t.route_next(0, 3), 3);
    }

    #[test]
    fn link_counts() {
        assert_eq!(Topology::Ring(8).link_count(), 16);
        assert_eq!(Topology::FullyConnected(4).link_count(), 12);
        assert_eq!(Topology::Star(5).link_count(), 8);
        // 4x4 torus: every node has 4 links.
        assert_eq!(Topology::Torus2D { w: 4, h: 4 }.link_count(), 64);
    }

    #[test]
    #[should_panic(expected = "own node")]
    fn routing_to_self_panics() {
        Topology::Ring(4).route_next(1, 1);
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        for bad in [
            Topology::Ring(1),
            Topology::Mesh2D { w: 1, h: 1 },
            Topology::FullyConnected(1),
            Topology::Star(1),
        ] {
            assert!(
                std::panic::catch_unwind(|| bad.validate()).is_err(),
                "{} should be rejected",
                bad.label()
            );
        }
        Topology::Hypercube { dim: 1 }.validate();
    }

    #[test]
    fn try_validate_reports_errors_without_panicking() {
        assert!(Topology::Ring(1).try_validate().is_err());
        assert!(Topology::Mesh2D { w: 0, h: 4 }.try_validate().is_err());
        assert!(Topology::Mesh2D { w: 1, h: 1 }.try_validate().is_err());
        assert!(Topology::Hypercube { dim: 0 }.try_validate().is_err());
        assert!(Topology::Hypercube { dim: 21 }.try_validate().is_err());
        assert!(Topology::FullyConnected(0).try_validate().is_err());
        assert!(Topology::Star(1).try_validate().is_err());

        assert!(Topology::Ring(2).try_validate().is_ok());
        assert!(Topology::Mesh2D { w: 2, h: 1 }.try_validate().is_ok());
        assert!(Topology::Torus2D { w: 32, h: 32 }.try_validate().is_ok());
        assert!(Topology::Hypercube { dim: 20 }.try_validate().is_ok());
    }

    #[test]
    fn try_validate_rejects_oversized_meshes_without_overflow() {
        // 100000 * 100000 wraps u32 multiplication; the validator must see
        // the true product and reject it with a size error, not a wrap.
        let huge = Topology::Mesh2D {
            w: 100_000,
            h: 100_000,
        };
        let err = huge.try_validate().unwrap_err();
        assert!(err.contains("exceeding"), "unexpected error: {err}");
        // nodes() saturates rather than wrapping for such shapes.
        assert_eq!(huge.nodes(), u32::MAX);

        let too_big_ring = Topology::Ring((MAX_NODES + 1) as u32);
        assert!(too_big_ring.try_validate().is_err());
        // The boundary itself is accepted.
        assert!(Topology::Ring(MAX_NODES as u32).try_validate().is_ok());
        assert!(Topology::Mesh2D { w: 1024, h: 1024 }.try_validate().is_ok());
    }
}
