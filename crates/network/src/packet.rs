//! Packets and the network-message event type.

use mermaid_ops::NodeId;
use pearl::Time;

/// Identifies a message uniquely within a simulation: source node plus a
/// source-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgId {
    /// Sending node.
    pub src: NodeId,
    /// Source-local message sequence number.
    pub seq: u64,
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Part of a data message.
    Data {
        /// Whether the message was sent with blocking `send` (the receiver
        /// must return an acknowledgement on consumption).
        sync: bool,
    },
    /// A rendezvous acknowledgement for a blocking send.
    Ack,
    /// A one-sided `put`: consumed automatically at the target, no receive
    /// operation involved.
    OneWay,
    /// A one-sided `get` request: the target services it automatically by
    /// returning `bytes` of data as a [`PacketKind::GetReply`] message.
    GetRequest {
        /// Payload size the requester wants back.
        bytes: u32,
    },
    /// The data half of a one-sided `get`.
    GetReply,
}

/// Where a packet's end-to-end time went, accumulated hop by hop.
///
/// Every field is a sum of exact `pearl::Duration` picosecond spans, so
/// for a delivered packet the components reconstruct the measured latency
/// *exactly*:
///
/// ```text
/// latency = pre + queue + route + ser + wire
/// ```
///
/// `pre` is accounted by the sending processor (send overhead on the
/// original attempt; elapsed recovery time on a retransmission), the rest
/// by every router the packet crosses. The accumulation is a handful of
/// integer adds per hop — cheap enough to do unconditionally — and is
/// observable only through the probe layer, so untraced runs stay
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathDecomp {
    /// Time before the packet entered the network: the sender's injection
    /// overhead, plus (for retransmissions) the whole retry-recovery span
    /// between the original send and this attempt's injection.
    pub pre_ps: u64,
    /// Time spent waiting for busy output links (contention).
    pub queue_ps: u64,
    /// Routing decision time (`routing_delay` per hop).
    pub route_ps: u64,
    /// Serialisation time: moving the packet's bytes onto each link, plus
    /// the tail residue at ejection.
    pub ser_ps: u64,
    /// Wire (propagation) latency across each link.
    pub wire_ps: u64,
}

impl PathDecomp {
    /// Sum of all components.
    pub fn total_ps(&self) -> u64 {
        self.pre_ps + self.queue_ps + self.route_ps + self.ser_ps + self.wire_ps
    }
}

/// One packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The message this packet belongs to.
    pub msg: MsgId,
    /// Final destination node.
    pub dst: NodeId,
    /// Packet index within the message (0-based).
    pub index: u32,
    /// Total packets in the message.
    pub count: u32,
    /// Payload bytes in this packet (headers are accounted separately).
    pub payload: u32,
    /// Total payload bytes of the whole message.
    pub msg_bytes: u32,
    /// Data or acknowledgement.
    pub kind: PacketKind,
    /// When the message's send operation was issued (for latency stats).
    pub sent_at: Time,
    /// Retransmission attempt this packet belongs to (0 = original send).
    /// Folded into the fault layer's per-traversal hash so a retry of the
    /// same packet over the same link redraws its transient-loss luck.
    pub attempt: u32,
    /// Checksum bit of the fault model: set when the packet was corrupted
    /// crossing a link, detected (and the packet discarded) at the next
    /// router's checksum point. Always `false` when faults are disabled.
    pub corrupted: bool,
    /// Running latency decomposition (see [`PathDecomp`]).
    pub path: PathDecomp,
}

/// A contiguous run of packets of one message travelling back-to-back.
///
/// The packets of a multi-packet message leave their source in one burst,
/// so on an uncontended path they stay nose-to-tail: packet `i`'s head
/// reaches each router a fixed, size-derived gap after packet `i-1`'s.
/// Routers exploit that regularity to move the whole run as *one* event
/// per hop instead of one per packet; the run is re-expanded (exactly)
/// wherever the back-to-back invariant cannot be guaranteed — see
/// `Router::handle_train`.
///
/// Only `first` is stored: packet `first.index + i` of the same message is
/// reconstructed with [`Train::packet`], so a train event costs no more
/// than a single-packet event.
#[derive(Debug, Clone, Copy)]
pub struct Train {
    /// The leading packet of the run.
    pub first: Packet,
    /// Packets in the run (≥ 2; singleton runs travel as plain
    /// `Inject`/`Forward`/`Deliver` events).
    pub len: u32,
}

impl Train {
    /// Reconstruct the `i`-th packet of the run (`0 ≤ i < len`).
    ///
    /// `payload_max` is the network's maximum packet payload; a message is
    /// split into full packets with one possibly-short tail, so the payload
    /// of any packet follows from its index alone.
    pub fn packet(&self, i: u32, payload_max: u32) -> Packet {
        debug_assert!(i < self.len);
        let index = self.first.index + i;
        debug_assert!(index < self.first.count);
        let payload = (self.first.msg_bytes - index * payload_max).min(payload_max);
        Packet {
            index,
            payload,
            ..self.first
        }
    }
}

/// Events exchanged between the components of the communication model.
// `Copy`: every variant is a small plain-data payload, so events move
// through the typed queue (and across shards) as flat bytes — no clones,
// drops, or indirection on the hot path (DESIGN.md §15).
#[derive(Debug, Clone, Copy)]
pub enum NetMsg {
    /// Processor self-event: resume after a `compute` or an overhead.
    Resume,
    /// Processor → its router: inject a packet into the network.
    Inject(Packet),
    /// Processor → its router: inject all packets of one message at once
    /// (they are ready at the same instant by construction).
    InjectTrain(Train),
    /// Router → router (or router → itself for multi-hop): packet header
    /// arrival.
    Forward(Packet),
    /// Router → router: head arrival of a back-to-back packet run; the
    /// followers' staggered arrival times are derived from packet sizes.
    ForwardTrain(Train),
    /// Router → its processor: a packet has fully arrived at the
    /// destination node.
    Deliver(Packet),
    /// Router → its processor: the tail of a packet run has fully arrived;
    /// the earlier packets of the run arrived (and were accounted) before.
    DeliverTrain(Train),
    /// Scripted fault event, self-posted to the affected router before the
    /// run starts (see `crate::fault::FaultSchedule`).
    Fault(crate::fault::FaultKind),
    /// Processor self-event: check whether the message is still
    /// unacknowledged and retransmit or give up (fault mode only).
    RetryCheck(MsgId),
    /// Processor self-event: watchdog for a blocking receive (fault mode
    /// only). `epoch` invalidates stale deadlines after the receive
    /// completes normally.
    RecvDeadline {
        /// The blocking-wait epoch this deadline was armed in.
        epoch: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_ids_are_value_types() {
        let a = MsgId { src: 1, seq: 9 };
        let b = MsgId { src: 1, seq: 9 };
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn packet_kinds_distinguish_sync() {
        assert_ne!(
            PacketKind::Data { sync: true },
            PacketKind::Data { sync: false }
        );
        assert_ne!(PacketKind::Data { sync: true }, PacketKind::Ack);
    }

    #[test]
    fn train_reconstructs_full_packets_and_short_tail() {
        let first = Packet {
            msg: MsgId { src: 0, seq: 0 },
            dst: 1,
            index: 0,
            count: 3,
            payload: 1024,
            msg_bytes: 2500,
            kind: PacketKind::Data { sync: false },
            sent_at: Time::ZERO,
            attempt: 0,
            corrupted: false,
            path: PathDecomp::default(),
        };
        let t = Train { first, len: 3 };
        assert_eq!(t.packet(0, 1024).payload, 1024);
        assert_eq!(t.packet(1, 1024).payload, 1024);
        assert_eq!(t.packet(1, 1024).index, 1);
        // Tail packet carries the remainder.
        assert_eq!(t.packet(2, 1024).payload, 2500 - 2 * 1024);
        // A sub-run starting mid-message reconstructs the same packets.
        let sub = Train {
            first: t.packet(1, 1024),
            len: 2,
        };
        assert_eq!(sub.packet(1, 1024), t.packet(2, 1024));
    }
}
