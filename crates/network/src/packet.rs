//! Packets and the network-message event type.

use mermaid_ops::NodeId;
use pearl::Time;

/// Identifies a message uniquely within a simulation: source node plus a
/// source-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgId {
    /// Sending node.
    pub src: NodeId,
    /// Source-local message sequence number.
    pub seq: u64,
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Part of a data message.
    Data {
        /// Whether the message was sent with blocking `send` (the receiver
        /// must return an acknowledgement on consumption).
        sync: bool,
    },
    /// A rendezvous acknowledgement for a blocking send.
    Ack,
    /// A one-sided `put`: consumed automatically at the target, no receive
    /// operation involved.
    OneWay,
    /// A one-sided `get` request: the target services it automatically by
    /// returning `bytes` of data as a [`PacketKind::GetReply`] message.
    GetRequest {
        /// Payload size the requester wants back.
        bytes: u32,
    },
    /// The data half of a one-sided `get`.
    GetReply,
}

/// One packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The message this packet belongs to.
    pub msg: MsgId,
    /// Final destination node.
    pub dst: NodeId,
    /// Packet index within the message (0-based).
    pub index: u32,
    /// Total packets in the message.
    pub count: u32,
    /// Payload bytes in this packet (headers are accounted separately).
    pub payload: u32,
    /// Total payload bytes of the whole message.
    pub msg_bytes: u32,
    /// Data or acknowledgement.
    pub kind: PacketKind,
    /// When the message's send operation was issued (for latency stats).
    pub sent_at: Time,
}

/// Events exchanged between the components of the communication model.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Processor self-event: resume after a `compute` or an overhead.
    Resume,
    /// Processor → its router: inject a packet into the network.
    Inject(Packet),
    /// Router → router (or router → itself for multi-hop): packet header
    /// arrival.
    Forward(Packet),
    /// Router → its processor: a packet has fully arrived at the
    /// destination node.
    Deliver(Packet),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_ids_are_value_types() {
        let a = MsgId { src: 1, seq: 9 };
        let b = MsgId { src: 1, seq: 9 };
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn packet_kinds_distinguish_sync() {
        assert_ne!(PacketKind::Data { sync: true }, PacketKind::Data { sync: false });
        assert_ne!(PacketKind::Data { sync: true }, PacketKind::Ack);
    }
}
