//! Edge cases of the communication model: degenerate message sizes,
//! out-of-order multi-source receives, async-receive ordering, and
//! saturation behaviour.

use mermaid_network::{CommSim, NetworkConfig, Topology};
use mermaid_ops::{NodeId, Operation, TraceSet};
use pearl::Time;

fn cfg(n: u32) -> NetworkConfig {
    NetworkConfig::test(Topology::Ring(n))
}

fn traces(n: u32, f: impl Fn(NodeId) -> Vec<Operation>) -> TraceSet {
    let mut ts = TraceSet::new(n as usize);
    for node in 0..n {
        ts.trace_mut(node).ops = f(node);
    }
    ts
}

#[test]
fn zero_byte_messages_complete() {
    // Pure synchronisation messages (header-only packets).
    let ts = traces(2, |node| match node {
        0 => vec![Operation::Send { bytes: 0, dst: 1 }],
        _ => vec![Operation::Recv { src: 0 }],
    });
    let r = CommSim::new(cfg(2), &ts).run();
    assert!(r.all_done);
    assert_eq!(r.total_messages, 1);
    assert_eq!(r.total_bytes, 0);
    // Still takes real time (headers, routing).
    assert!(r.finish > Time::ZERO);
}

#[test]
fn maximum_size_messages_complete() {
    // 64 MiB message → 65536 packets of 1 KiB.
    let bytes = 64 * 1024 * 1024u32;
    let ts = traces(2, |node| match node {
        0 => vec![Operation::ASend { bytes, dst: 1 }],
        _ => vec![Operation::Recv { src: 0 }],
    });
    let r = CommSim::new(cfg(2), &ts).run();
    assert!(r.all_done);
    assert_eq!(r.total_bytes, bytes as u64);
    // At 1 GB/s the transfer alone is ≥ 64 ms of virtual time.
    assert!(r.finish >= Time::from_ms(64));
}

#[test]
fn receives_from_distinct_sources_match_by_source() {
    // Node 2 receives from 0 and 1 in the *opposite* order of arrival:
    // source-keyed matching must hold the early message.
    let ts = traces(3, |node| match node {
        0 => vec![Operation::ASend { bytes: 8, dst: 2 }], // arrives first
        1 => vec![
            Operation::Compute { ps: 1_000_000 },
            Operation::ASend { bytes: 8, dst: 2 },
        ],
        _ => vec![
            Operation::Recv { src: 1 }, // waits for the late sender
            Operation::Recv { src: 0 }, // then consumes the early one
        ],
    });
    let r = CommSim::new(cfg(3), &ts).run();
    assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
    assert!(r.nodes[2].proc.recv_block >= pearl::Duration::from_us(1) / 2);
}

#[test]
fn multiple_messages_from_one_source_are_fifo() {
    let ts = traces(2, |node| match node {
        0 => vec![
            Operation::ASend { bytes: 100, dst: 1 },
            Operation::ASend { bytes: 200, dst: 1 },
            Operation::ASend { bytes: 300, dst: 1 },
        ],
        _ => vec![
            Operation::Recv { src: 0 },
            Operation::Recv { src: 0 },
            Operation::Recv { src: 0 },
        ],
    });
    let r = CommSim::new(cfg(2), &ts).run();
    assert!(r.all_done);
    assert_eq!(r.nodes[1].proc.msgs_received, 3);
}

#[test]
fn arecv_before_and_after_arrival_both_consume() {
    let ts = traces(2, |node| match node {
        0 => vec![
            Operation::ASend { bytes: 8, dst: 1 },
            Operation::ASend { bytes: 8, dst: 1 },
        ],
        _ => vec![
            Operation::ARecv { src: 0 },           // posted before arrival
            Operation::Compute { ps: 10_000_000 }, // let both arrive
            Operation::ARecv { src: 0 },           // posted after arrival
        ],
    });
    let r = CommSim::new(cfg(2), &ts).run();
    assert!(r.all_done);
    assert_eq!(r.nodes[1].proc.msgs_received, 2);
}

#[test]
fn saturating_a_ring_keeps_throughput_finite_and_fair() {
    // Every node floods its neighbour with 50 messages; all complete, and
    // per-node service is symmetric (same count everywhere).
    let n = 6u32;
    let msgs = 50u32;
    let ts = traces(n, |node| {
        let mut ops = Vec::new();
        for _ in 0..msgs {
            ops.push(Operation::ASend {
                bytes: 4096,
                dst: (node + 1) % n,
            });
        }
        for _ in 0..msgs {
            ops.push(Operation::Recv {
                src: (node + n - 1) % n,
            });
        }
        ops
    });
    let r = CommSim::new(cfg(n), &ts).run();
    assert!(r.all_done);
    assert_eq!(r.total_messages, (n * msgs) as u64);
    for node in &r.nodes {
        assert_eq!(node.proc.msgs_received, msgs as u64);
    }
    // Aggregate goodput can't exceed the aggregate link bandwidth.
    let bytes_total = (n * msgs) as u64 * 4096;
    let min_time_s = bytes_total as f64 / (n as f64 * 1e9);
    assert!(r.finish.as_secs_f64() >= min_time_s);
}

#[test]
fn sync_send_to_a_node_that_uses_arecv_still_gets_its_ack() {
    // The rendezvous ack must fire when an *async* receive consumes the
    // message too.
    let ts = traces(2, |node| match node {
        0 => vec![Operation::Send { bytes: 64, dst: 1 }],
        _ => vec![
            Operation::ARecv { src: 0 },
            Operation::Compute { ps: 10_000_000 },
        ],
    });
    let r = CommSim::new(cfg(2), &ts).run();
    assert!(r.all_done, "sender never unblocked: {:?}", r.deadlocked);
    assert!(r.nodes[0].proc.send_block > pearl::Duration::ZERO);
}
