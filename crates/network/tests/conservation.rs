//! Conservation laws of the communication model: nothing the network
//! carries is created or destroyed.

use proptest::prelude::*;

use mermaid_network::{CommSim, NetworkConfig, Switching, Topology};
use mermaid_ops::{Operation, TraceSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Message conservation: every payload byte sent is received; every
    /// message sent is consumed; packet forwarding hop counts equal the
    /// sum of route distances.
    #[test]
    fn bytes_and_messages_are_conserved(
        flows in prop::collection::vec((0u32..8, 0u32..8, 1u32..20_000), 1..30),
        saf in any::<bool>(),
    ) {
        let topo = Topology::Hypercube { dim: 3 };
        let mut cfg = NetworkConfig::test(topo);
        cfg.router.switching = if saf {
            Switching::StoreAndForward
        } else {
            Switching::VirtualCutThrough
        };
        let mut ts = TraceSet::new(8);
        let mut expected_bytes = 0u64;
        let mut expected_msgs = 0u64;
        for &(src, dst, bytes) in &flows {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
            expected_bytes += bytes as u64;
            expected_msgs += 1;
        }
        for &(src, dst, _) in &flows {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let r = CommSim::new(cfg, &ts).run();
        prop_assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        prop_assert_eq!(r.total_messages, expected_msgs);
        prop_assert_eq!(r.total_bytes, expected_bytes);
        // Per-node: sent == consumed somewhere; received == consumed here.
        let sent: u64 = r.nodes.iter().map(|n| n.proc.msgs_sent).sum();
        let recvd: u64 = r.nodes.iter().map(|n| n.proc.msgs_received).sum();
        prop_assert_eq!(sent, recvd);
        // Hop conservation: data packets forwarded = Σ per-packet distance
        // (self-sends don't enter the network; every flow here has
        // src != dst contributing distance ≥ 1, == contributing 0).
        let per_msg_packets = |bytes: u32| bytes.div_ceil(1024).max(1) as u64;
        let expected_hops: u64 = flows
            .iter()
            .filter(|&&(s, d, _)| s != d)
            .map(|&(s, d, b)| topo.distance(s, d) as u64 * per_msg_packets(b))
            .sum();
        let forwarded: u64 = r.nodes.iter().map(|n| n.router.forwarded).sum();
        prop_assert_eq!(forwarded, expected_hops);
    }

    /// Latency sanity: every measured message latency is at least the pure
    /// wire+serialisation lower bound for its path, and finite.
    #[test]
    fn latencies_respect_physical_lower_bounds(
        bytes in 1u32..100_000,
        dst in 1u32..8,
    ) {
        let topo = Topology::Ring(8);
        let cfg = NetworkConfig::test(topo);
        let mut ts = TraceSet::new(8);
        ts.trace_mut(0).push(Operation::ASend { bytes, dst });
        ts.trace_mut(dst).push(Operation::Recv { src: 0 });
        let r = CommSim::new(cfg, &ts).run();
        prop_assert!(r.all_done);
        let measured = r.msg_latency.max().unwrap();
        // Lower bound: serialising the payload once at full link speed.
        let serialise_ps = cfg.link.transfer_time(bytes).as_ps();
        prop_assert!(
            measured >= serialise_ps,
            "latency {} below serialisation bound {}",
            measured,
            serialise_ps
        );
    }
}
