//! Determinism property: the communication model is a pure function of
//! (configuration, traces). Two independently constructed simulations of
//! the same inputs must agree on *every* observable — virtual times,
//! event counts, per-node statistics — across routing and switching
//! modes. The trace-validity argument of the workbench (task-level traces
//! reflect one legal physical interleaving) rests on this.

use proptest::prelude::*;

use mermaid_network::{CommResult, CommSim, NetworkConfig, Routing, Switching, Topology};
use mermaid_ops::{Operation, TraceSet};

/// Compare every observable of two results.
fn assert_identical(a: &CommResult, b: &CommResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.finish, b.finish);
    prop_assert_eq!(a.all_done, b.all_done);
    prop_assert_eq!(&a.deadlocked, &b.deadlocked);
    prop_assert_eq!(a.events, b.events);
    prop_assert_eq!(a.total_messages, b.total_messages);
    prop_assert_eq!(a.total_bytes, b.total_bytes);
    prop_assert_eq!(a.msg_latency.count(), b.msg_latency.count());
    prop_assert_eq!(a.msg_latency.max(), b.msg_latency.max());
    prop_assert_eq!(a.nodes.len(), b.nodes.len());
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        prop_assert_eq!(na.node, nb.node);
        prop_assert_eq!(na.proc.finished_at, nb.proc.finished_at);
        prop_assert_eq!(na.proc.compute, nb.proc.compute);
        prop_assert_eq!(na.proc.send_block, nb.proc.send_block);
        prop_assert_eq!(na.proc.recv_block, nb.proc.recv_block);
        prop_assert_eq!(na.proc.msgs_sent, nb.proc.msgs_sent);
        prop_assert_eq!(na.proc.bytes_sent, nb.proc.bytes_sent);
        prop_assert_eq!(na.proc.msgs_received, nb.proc.msgs_received);
        prop_assert_eq!(na.router.forwarded, nb.router.forwarded);
        prop_assert_eq!(na.router.delivered, nb.router.delivered);
        prop_assert_eq!(na.router.link_wait, nb.router.link_wait);
        prop_assert_eq!(na.router.link_busy, nb.router.link_busy);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary balanced workloads over an 8-node hypercube, all four
    /// routing × switching combinations: two fresh simulations produce
    /// bit-identical results.
    #[test]
    fn independent_runs_are_bit_identical(
        flows in prop::collection::vec(
            (0u32..8, 0u32..8, 1u32..40_000, 0u64..50_000), 1..25),
        adaptive in any::<bool>(),
        saf in any::<bool>(),
    ) {
        let mut cfg = NetworkConfig::test(Topology::Hypercube { dim: 3 });
        cfg.router.routing = if adaptive {
            Routing::AdaptiveMinimal
        } else {
            Routing::DimensionOrder
        };
        cfg.router.switching = if saf {
            Switching::StoreAndForward
        } else {
            Switching::VirtualCutThrough
        };
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes, compute_ps) in &flows {
            if compute_ps > 0 {
                ts.trace_mut(src).push(Operation::Compute { ps: compute_ps });
            }
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _, _) in &flows {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let a = CommSim::new(cfg, &ts).run();
        let b = CommSim::new(cfg, &ts).run();
        prop_assert!(a.all_done, "deadlocked: {:?}", a.deadlocked);
        assert_identical(&a, &b)?;
    }

    /// Incremental observation must not perturb the result: a run stepped
    /// in small event batches ends bit-identical to an uninterrupted run.
    #[test]
    fn batched_stepping_matches_one_shot_run(
        flows in prop::collection::vec((0u32..8, 0u32..8, 1u32..20_000), 1..15),
        batch in 1u64..64,
    ) {
        let cfg = NetworkConfig::test(Topology::Hypercube { dim: 3 });
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes) in &flows {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &flows {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let one_shot = CommSim::new(cfg, &ts).run();
        let mut stepped_sim = CommSim::new(cfg, &ts);
        let mut stepped = stepped_sim.run_events(batch);
        while !stepped_sim.is_idle() {
            stepped = stepped_sim.run_events(batch);
        }
        assert_identical(&one_shot, &stepped)?;
    }
}
