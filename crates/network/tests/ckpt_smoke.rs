// Quick smoke: serial checkpoint → restore → byte-identical results.
use mermaid_network::{CommSim, NetworkConfig, Topology};
use mermaid_ops::{Operation, TraceSet};
use mermaid_probe::ProbeHandle;
use pearl::Time;

fn trace_set(n: u32) -> TraceSet {
    let mut ts = TraceSet::new(n as usize);
    for node in 0..n {
        ts.trace_mut(node).ops = vec![
            Operation::ASend {
                bytes: 3000,
                dst: (node + 1) % n,
            },
            Operation::Recv {
                src: (node + n - 1) % n,
            },
            Operation::Compute { ps: 10_000 },
        ];
    }
    ts
}

#[test]
fn serial_checkpoint_restore_is_bit_identical() {
    let cfg = NetworkConfig::test(Topology::Ring(4));
    let ts = trace_set(4);
    let full = CommSim::new(cfg, &ts).run();
    let at = Time::from_ps(2_000);
    let mut sim = CommSim::new(cfg, &ts);
    sim.run_until(Time::from_ps(1_999));
    let snap = sim.checkpoint("deadbeefdeadbeef", at);
    let text = snap.to_file_string();
    let back = mermaid_network::Snapshot::parse(&text).unwrap();
    let mut restored = CommSim::restore(cfg, &ts, ProbeHandle::disabled(), None, &back).unwrap();
    let r = restored.run();
    assert_eq!(r.finish, full.finish);
    assert_eq!(r.events, full.events);
    assert_eq!(r.total_messages, full.total_messages);
    assert_eq!(format!("{:?}", r.nodes), format!("{:?}", full.nodes));
}

#[test]
fn faulty_checkpoint_restore_is_bit_identical() {
    use mermaid_network::{FaultSchedule, RetryParams};
    use std::sync::Arc;
    let cfg = NetworkConfig::test(Topology::Mesh2D { w: 3, h: 2 });
    let mk_faults = || {
        let mut f = FaultSchedule::new(7)
            .with_drop_ppm(30_000)
            .with_corrupt_ppm(10_000)
            .with_retry(RetryParams::default_for(&NetworkConfig::test(
                Topology::Mesh2D { w: 3, h: 2 },
            )));
        f.cut_link(
            0,
            1,
            pearl::Time::from_us(2),
            Some(pearl::Time::from_us(60)),
        );
        f.crash_router(2, pearl::Time::from_us(10), Some(pearl::Time::from_us(80)));
        Arc::new(f)
    };
    let n = 6u32;
    let mut ts = TraceSet::new(n as usize);
    for node in 0..n {
        ts.trace_mut(node).ops = vec![
            Operation::ASend {
                bytes: 9000,
                dst: (node + 1) % n,
            },
            Operation::ASend {
                bytes: 500,
                dst: (node + 2) % n,
            },
            Operation::Recv {
                src: (node + n - 1) % n,
            },
            Operation::Recv {
                src: (node + n - 2) % n,
            },
            Operation::Compute { ps: 10_000 },
        ];
    }
    let full = CommSim::new_with_faults(cfg, &ts, ProbeHandle::disabled(), mk_faults()).run();
    // Checkpoint mid-outage, with retries outstanding.
    for at_us in [1u64, 5, 15, 70] {
        let at = Time::from_us(at_us);
        let mut sim = CommSim::new_with_faults(cfg, &ts, ProbeHandle::disabled(), mk_faults());
        sim.run_until(Time::from_ps(at.as_ps() - 1));
        let snap = sim.checkpoint("deadbeefdeadbeef", at);
        let back = mermaid_network::Snapshot::parse(&snap.to_file_string()).unwrap();
        let mut restored =
            CommSim::restore(cfg, &ts, ProbeHandle::disabled(), Some(mk_faults()), &back).unwrap();
        let r = restored.run();
        assert_eq!(
            format!("{r:?}"),
            format!("{full:?}"),
            "diverged at T={at_us}us"
        );
    }
}
