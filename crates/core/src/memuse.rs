//! Simulator memory-footprint accounting (experiment E3).
//!
//! "Since Mermaid does not interpret machine instructions, it is not
//! necessary to store large quantities of state information during
//! simulation runs. For example, the contents of the memory does not have
//! to be modelled and simulated caches only need to hold addresses (tags),
//! not data." (paper, Section 6). This module makes that claim measurable:
//! it computes the resident model state of a configured machine, node by
//! node, and contrasts it with the memory the *simulated* machine would
//! have.

use mermaid_cpu::SingleNodeSim;
use mermaid_memory::MemorySystem;

use crate::machines::MachineConfig;

/// Breakdown of the simulator-side memory footprint for one machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelFootprint {
    /// Nodes in the machine.
    pub nodes: u32,
    /// Bytes of model state per node (cache tags, CPU state, router state).
    pub bytes_per_node: usize,
    /// Total model bytes for the machine.
    pub total_bytes: usize,
    /// Bytes of *simulated* memory capacity per node (caches only — the
    /// quantity a data-carrying simulator would additionally store).
    pub simulated_cache_bytes_per_node: u64,
}

impl ModelFootprint {
    /// Measure the footprint of `machine`'s models.
    pub fn of(machine: &MachineConfig) -> Self {
        let nodes = machine.nodes();
        // One representative node: CPUs + memory system.
        let node = SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let per_node_mem = node.footprint_bytes();
        // Router-side state is small and bounded: neighbour map + stats.
        let router_estimate = 512usize;
        let bytes_per_node = per_node_mem + router_estimate;
        let m = &machine.node_mem;
        let simulated = m.cpus as u64
            * (m.l1i.size_bytes + m.l1d.size_bytes + m.l2.map_or(0, |l| l.size_bytes));
        ModelFootprint {
            nodes,
            bytes_per_node,
            total_bytes: bytes_per_node * nodes as usize,
            simulated_cache_bytes_per_node: simulated,
        }
    }

    /// Ratio of simulated cache capacity to model state — how much a
    /// data-carrying simulator would pay on top (≫1 demonstrates the
    /// tags-only saving).
    pub fn data_overhead_ratio(&self) -> f64 {
        self.simulated_cache_bytes_per_node as f64 / self.bytes_per_node.max(1) as f64
    }
}

/// Footprint of a concrete, already-running memory system (post-run; the
/// same number `ModelFootprint::of` predicts per node).
pub fn live_footprint(mem: &MemorySystem) -> usize {
    mem.footprint_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;

    #[test]
    fn footprint_scales_linearly_with_nodes() {
        let m4 = ModelFootprint::of(&MachineConfig::t805_multicomputer(Topology::Ring(4)));
        let m16 = ModelFootprint::of(&MachineConfig::t805_multicomputer(Topology::Ring(16)));
        assert_eq!(m4.bytes_per_node, m16.bytes_per_node);
        assert_eq!(m16.total_bytes, 4 * m4.total_bytes);
    }

    #[test]
    fn tags_only_model_is_much_smaller_than_simulated_caches() {
        let m = ModelFootprint::of(&MachineConfig::powerpc601_node(1));
        // 32K + 32K + 512K simulated; the tag model must be well under it.
        assert_eq!(m.simulated_cache_bytes_per_node, 576 * 1024);
        assert!(
            m.data_overhead_ratio() > 1.0,
            "tags-only model ({} B) should undercut simulated capacity",
            m.bytes_per_node
        );
    }

    #[test]
    fn smp_nodes_count_every_cpu() {
        let one = ModelFootprint::of(&MachineConfig::powerpc601_node(1));
        let four = ModelFootprint::of(&MachineConfig::powerpc601_node(4));
        assert!(four.bytes_per_node > 3 * one.bytes_per_node);
        assert_eq!(
            four.simulated_cache_bytes_per_node,
            4 * one.simulated_cache_bytes_per_node
        );
    }
}
