//! Task-level (fast-prototyping) simulation mode.
//!
//! "If fast prototyping of a multicomputer is the primary goal, then the
//! communication model can be used directly. […] Computation can be
//! simulated extremely fast since it is modelled at the level of tasks,
//! whereas communication is simulated in more detail" (paper, Section 6).
//! The task-level traces come straight from a trace generator (Fig. 4's
//! task-level quadrants) instead of from the computational model.

use mermaid_network::{CommResult, CommSim, NetworkConfig};
use mermaid_ops::TraceSet;
use mermaid_probe::ProbeHandle;
use pearl::Time;

/// Result of a task-level simulation.
#[derive(Debug)]
pub struct TaskLevelResult {
    /// Predicted execution time.
    pub predicted_time: Time,
    /// Full communication-model results.
    pub comm: CommResult,
    /// Task-level operations simulated.
    pub ops_simulated: u64,
}

/// The fast-prototyping simulator: the communication model alone.
pub struct TaskLevelSim {
    network: NetworkConfig,
    probe: ProbeHandle,
}

impl TaskLevelSim {
    /// Create a task-level simulator for the given interconnect.
    pub fn new(network: NetworkConfig) -> Self {
        network.validate();
        TaskLevelSim {
            network,
            probe: ProbeHandle::disabled(),
        }
    }

    /// Attach an instrumentation handle: runs record engine, router and
    /// processor events into it (observation only — predicted times are
    /// unchanged).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// The interconnect configuration.
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Run over task-level traces (one per node).
    pub fn run(&self, traces: &TraceSet) -> TaskLevelResult {
        let ops_simulated = traces.total_ops() as u64;
        let comm = CommSim::new_with_probe(self.network, traces, self.probe.clone()).run();
        TaskLevelResult {
            predicted_time: comm.finish,
            comm,
            ops_simulated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;
    use mermaid_tracegen::{CommPattern, StochasticApp, StochasticGenerator};

    fn traces(n: u32, pattern: CommPattern) -> TraceSet {
        let app = StochasticApp {
            pattern,
            ..StochasticApp::scientific(n)
        };
        StochasticGenerator::new(app, 11).generate_task_level()
    }

    #[test]
    fn task_level_run_completes() {
        let ts = traces(8, CommPattern::NearestNeighborRing);
        let r = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        assert!(r.comm.all_done, "deadlocked: {:?}", r.comm.deadlocked);
        assert!(r.predicted_time > Time::ZERO);
        assert_eq!(r.ops_simulated, ts.total_ops() as u64);
    }

    #[test]
    fn richer_topology_is_no_slower_for_all_to_all() {
        let ts = traces(8, CommPattern::AllToAll);
        let ring = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        let full = TaskLevelSim::new(NetworkConfig::test(Topology::FullyConnected(8))).run(&ts);
        assert!(full.predicted_time <= ring.predicted_time);
    }

    #[test]
    fn hypercube_beats_ring_on_butterfly_traffic() {
        let ts = traces(8, CommPattern::Butterfly);
        let ring = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        let cube = TaskLevelSim::new(NetworkConfig::test(Topology::Hypercube { dim: 3 })).run(&ts);
        assert!(cube.predicted_time <= ring.predicted_time);
    }
}
