//! Task-level (fast-prototyping) simulation mode.
//!
//! "If fast prototyping of a multicomputer is the primary goal, then the
//! communication model can be used directly. […] Computation can be
//! simulated extremely fast since it is modelled at the level of tasks,
//! whereas communication is simulated in more detail" (paper, Section 6).
//! The task-level traces come straight from a trace generator (Fig. 4's
//! task-level quadrants) instead of from the computational model.

use std::sync::Arc;

use mermaid_network::{
    run_checkpointed_with, CommResult, CommSim, FaultSchedule, NetworkConfig, ShardProfile,
    Speculation,
};
use mermaid_ops::TraceSet;
use mermaid_probe::ProbeHandle;
use pearl::Time;

/// Result of a task-level simulation.
#[derive(Debug)]
pub struct TaskLevelResult {
    /// Predicted execution time.
    pub predicted_time: Time,
    /// Full communication-model results.
    pub comm: CommResult,
    /// Task-level operations simulated.
    pub ops_simulated: u64,
    /// Shard self-profile of a sharded run (`None` when the run was
    /// serial). Host-wall-clock data, kept outside `comm` so determinism
    /// checks over the model results are unaffected.
    pub shard_profile: Option<ShardProfile>,
}

/// The fast-prototyping simulator: the communication model alone.
pub struct TaskLevelSim {
    network: NetworkConfig,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
    speculation: Speculation,
}

impl TaskLevelSim {
    /// Create a task-level simulator for the given interconnect.
    pub fn new(network: NetworkConfig) -> Self {
        network.validate();
        TaskLevelSim {
            network,
            probe: ProbeHandle::disabled(),
            shards: 1,
            faults: None,
            speculation: Speculation::default(),
        }
    }

    /// Attach an instrumentation handle: runs record engine, router and
    /// processor events into it (observation only — predicted times are
    /// unchanged).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Run the communication model on `shards` worker threads (builder
    /// style). Sharded runs produce bit-identical results to the default
    /// single-threaded run; `1` (the default) keeps the serial path.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enable deterministic fault injection (builder style): scripted
    /// link/router faults plus seeded transient packet loss/corruption,
    /// with the ack/retry/backoff reliability protocol armed. Serial and
    /// sharded runs stay bit-identical under the same schedule.
    pub fn with_faults(mut self, faults: Option<Arc<FaultSchedule>>) -> Self {
        self.faults = faults;
        self
    }

    /// Set the speculative-window policy for sharded runs (builder
    /// style). Scheduling only: results are bit-identical across every
    /// policy. Ignored by serial runs.
    pub fn with_speculation(mut self, speculation: Speculation) -> Self {
        self.speculation = speculation;
        self
    }

    /// The interconnect configuration.
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Run over task-level traces (one per node).
    pub fn run(&self, traces: &TraceSet) -> TaskLevelResult {
        let ops_simulated = traces.total_ops() as u64;
        let (comm, shard_profile) = if self.shards > 1 {
            run_checkpointed_with(
                self.network,
                traces,
                self.probe.clone(),
                self.shards,
                self.faults.clone(),
                None,
                None,
                self.speculation,
            )
            .expect("a run without checkpoint options cannot fail")
        } else {
            let comm = match &self.faults {
                Some(f) => CommSim::new_with_faults(
                    self.network,
                    traces,
                    self.probe.clone(),
                    Arc::clone(f),
                )
                .run(),
                None => CommSim::new_with_probe(self.network, traces, self.probe.clone()).run(),
            };
            (comm, None)
        };
        TaskLevelResult {
            predicted_time: comm.finish,
            comm,
            ops_simulated,
            shard_profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;
    use mermaid_tracegen::{CommPattern, StochasticApp, StochasticGenerator};

    fn traces(n: u32, pattern: CommPattern) -> TraceSet {
        let app = StochasticApp {
            pattern,
            ..StochasticApp::scientific(n)
        };
        StochasticGenerator::new(app, 11).generate_task_level()
    }

    #[test]
    fn task_level_run_completes() {
        let ts = traces(8, CommPattern::NearestNeighborRing);
        let r = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        assert!(r.comm.all_done, "deadlocked: {:?}", r.comm.deadlocked);
        assert!(r.predicted_time > Time::ZERO);
        assert_eq!(r.ops_simulated, ts.total_ops() as u64);
    }

    #[test]
    fn richer_topology_is_no_slower_for_all_to_all() {
        let ts = traces(8, CommPattern::AllToAll);
        let ring = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        let full = TaskLevelSim::new(NetworkConfig::test(Topology::FullyConnected(8))).run(&ts);
        assert!(full.predicted_time <= ring.predicted_time);
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_topologies_and_patterns() {
        // Every topology shape × every communication pattern: a sharded
        // run must reproduce the serial result exactly, field for field
        // (the Debug rendering covers times, event counts, per-node stats
        // and histograms).
        let topos = [
            Topology::Ring(8),
            Topology::Mesh2D { w: 4, h: 2 },
            Topology::Torus2D { w: 4, h: 2 },
            Topology::Hypercube { dim: 3 },
        ];
        let patterns = [
            CommPattern::None,
            CommPattern::NearestNeighborRing,
            CommPattern::AllToAll,
            CommPattern::MasterWorker,
            CommPattern::RandomPermutation,
            CommPattern::Butterfly,
        ];
        for topo in topos {
            for pattern in patterns {
                let ts = traces(topo.nodes(), pattern);
                let serial = TaskLevelSim::new(NetworkConfig::test(topo)).run(&ts);
                let sharded = TaskLevelSim::new(NetworkConfig::test(topo))
                    .with_shards(3)
                    .run(&ts);
                assert_eq!(
                    format!("{:?}", serial.comm),
                    format!("{:?}", sharded.comm),
                    "{topo:?} × {pattern:?} diverged"
                );
                assert_eq!(serial.predicted_time, sharded.predicted_time);
                assert_eq!(serial.ops_simulated, sharded.ops_simulated);
            }
        }
    }

    #[test]
    fn hypercube_beats_ring_on_butterfly_traffic() {
        let ts = traces(8, CommPattern::Butterfly);
        let ring = TaskLevelSim::new(NetworkConfig::test(Topology::Ring(8))).run(&ts);
        let cube = TaskLevelSim::new(NetworkConfig::test(Topology::Hypercube { dim: 3 })).run(&ts);
        assert!(cube.predicted_time <= ring.predicted_time);
    }
}
