//! Post-mortem report rendering: turns simulation results into the tables
//! and summaries of the "visualization and analysis tools" box of Fig. 1.

use mermaid_network::CommResult;
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use pearl::Time;

use crate::campaign::CampaignRecord;
use crate::hybrid::HybridResult;
use crate::slowdown::SlowdownReport;
use crate::tasklevel::TaskLevelResult;

/// Render a per-node summary table of a hybrid run.
pub fn hybrid_table(r: &HybridResult) -> Table {
    let mut t = Table::new([
        "node", "ops", "compute", "send blk", "recv blk", "l1d hit%", "msgs rx",
    ])
    .with_title("Hybrid simulation, per node");
    for (compute, comm) in r.nodes.iter().zip(&r.comm.nodes) {
        let l1d: f64 = compute
            .mem
            .l1d
            .first()
            .map(|s| 100.0 * s.hit_rate())
            .unwrap_or(0.0);
        t.row([
            compute.node.to_string(),
            compute.cpu.ops.total.to_string(),
            format!("{}", comm.proc.compute),
            format!("{}", comm.proc.send_block),
            format!("{}", comm.proc.recv_block),
            format!("{l1d:.1}"),
            comm.proc.msgs_received.to_string(),
        ]);
    }
    t
}

/// Render a task-level run summary.
pub fn task_level_table(r: &TaskLevelResult) -> Table {
    let mut t = Table::new([
        "node", "compute", "send blk", "recv blk", "msgs rx", "bytes tx",
    ])
    .with_title("Task-level simulation, per node");
    for n in &r.comm.nodes {
        t.row([
            n.node.to_string(),
            format!("{}", n.proc.compute),
            format!("{}", n.proc.send_block),
            format!("{}", n.proc.recv_block),
            n.proc.msgs_received.to_string(),
            n.proc.bytes_sent.to_string(),
        ]);
    }
    t
}

/// Render the degraded-mode summary of a fault-injected run: the
/// structured evidence of what the network failed to deliver. Returns
/// `None` when the run saw no degradation (nothing failed, timed out or
/// was dropped).
pub fn degraded_table(comm: &CommResult) -> Option<Table> {
    if !comm.degraded() {
        return None;
    }
    let mut t =
        Table::new(["sender", "dest", "msg seq", "retries", "gave up at"]).with_title(format!(
            "Degraded mode: {} message(s) failed, {} recv timeout(s), {} retransmission(s), \
             {} packet(s) dropped",
            comm.msgs_failed, comm.recv_timeouts, comm.total_retries, comm.total_dropped
        ));
    for u in &comm.unreachable {
        t.row([
            u.src.to_string(),
            u.dst.to_string(),
            u.seq.to_string(),
            u.retries.to_string(),
            format!("{}", u.gave_up),
        ]);
    }
    Some(t)
}

/// Render the campaign comparison table: records grouped by workload (in
/// first-appearance order — i.e. spec expansion order), each group ranked
/// by predicted time with ties broken on the config hash, so the table is
/// byte-stable regardless of execution order. The `vs best` column is the
/// slowdown relative to the group's winner; latency tails come from the
/// runs' log₂ histograms.
pub fn campaign_table(records: &[&CampaignRecord]) -> Table {
    let mut t = Table::new([
        "workload",
        "rank",
        "architecture",
        "predicted",
        "vs best",
        "lat p50",
        "lat p99",
        "lat max",
        "dropped",
    ])
    .with_title("Campaign comparison: architectures ranked per workload")
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut workloads: Vec<String> = Vec::new();
    for r in records {
        let key = r.config.workload_key();
        if !workloads.contains(&key) {
            workloads.push(key);
        }
    }
    for key in &workloads {
        let mut group: Vec<&&CampaignRecord> = records
            .iter()
            .filter(|r| r.config.workload_key() == *key)
            .collect();
        group.sort_by_key(|r| (r.predicted_ps, r.config_hash.clone()));
        let best = group[0].predicted_ps.max(1);
        for (rank, r) in group.iter().enumerate() {
            t.row([
                if rank == 0 {
                    key.clone()
                } else {
                    String::new()
                },
                (rank + 1).to_string(),
                r.config.architecture_label(),
                format!("{}", Time::from_ps(r.predicted_ps)),
                format!("{:.2}x", r.predicted_ps as f64 / best as f64),
                format!("{}", Time::from_ps(r.latency_p50_ps)),
                format!("{}", Time::from_ps(r.latency_p99_ps)),
                format!("{}", Time::from_ps(r.latency_max_ps)),
                r.delivery.dropped_packets.to_string(),
            ]);
        }
    }
    t
}

/// Render a slowdown table in the paper's Section 6 shape.
pub fn slowdown_table(rows: &[(String, SlowdownReport)]) -> Table {
    let mut t = Table::new([
        "configuration",
        "procs",
        "sim time",
        "host ms",
        "slowdown/proc",
        "cycles/s",
    ])
    .with_title("Slowdown per simulated processor (paper Section 6)")
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (name, r) in rows {
        t.row([
            name.clone(),
            r.processors.to_string(),
            format!("{}", r.simulated),
            format!("{:.1}", r.host_wall.as_secs_f64() * 1e3),
            format!("{:.1}", r.slowdown_per_processor()),
            format!("{:.0}", r.target_cycles_per_host_second()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridSim;
    use crate::machines::MachineConfig;
    use crate::tasklevel::TaskLevelSim;
    use mermaid_network::Topology;
    use mermaid_tracegen::{CommPattern, SizeDist, StochasticApp, StochasticGenerator};

    #[test]
    fn tables_render_for_real_runs() {
        let app = StochasticApp {
            phases: 2,
            ops_per_phase: SizeDist::Fixed(100),
            pattern: CommPattern::NearestNeighborRing,
            ..StochasticApp::scientific(3)
        };
        let machine = MachineConfig::test_machine(Topology::Ring(3));
        let hybrid =
            HybridSim::new(machine.clone()).run(&StochasticGenerator::new(app, 1).generate());
        let ht = hybrid_table(&hybrid);
        assert_eq!(ht.len(), 3);
        assert!(ht.render().contains("node"));

        let task = TaskLevelSim::new(machine.network)
            .run(&StochasticGenerator::new(app, 1).generate_task_level());
        let tt = task_level_table(&task);
        assert_eq!(tt.len(), 3);
        assert!(tt.to_csv().lines().count() == 4);
    }

    #[test]
    fn campaign_table_ranks_within_workloads() {
        use crate::campaign::{execute_run, CampaignSpec};
        let spec = CampaignSpec::parse(
            "topo = ring:4, full:4; pattern = ring, all2all; phases = 1; ops = 200",
        )
        .unwrap();
        let records: Vec<_> = spec.expand().unwrap().iter().map(execute_run).collect();
        let refs: Vec<&_> = records.iter().collect();
        let t = campaign_table(&refs);
        assert_eq!(t.len(), 4, "two workloads x two architectures");
        let s = t.render();
        // Each workload group leads with its best architecture at 1.00x.
        assert!(s.contains("1.00x"), "{s}");
        assert!(s.contains("ring:4"), "{s}");
        assert!(s.contains("full:4"), "{s}");
    }

    #[test]
    fn slowdown_table_renders() {
        use crate::slowdown::SlowdownMeter;
        let m = SlowdownMeter::start(4, pearl::Frequency::from_mhz(30));
        let rep = m.finish(pearl::Time::from_us(100));
        let t = slowdown_table(&[("t805".to_string(), rep)]);
        let s = t.render();
        assert!(s.contains("t805"));
        assert!(s.contains("slowdown/proc"));
    }
}
