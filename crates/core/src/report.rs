//! Post-mortem report rendering: turns simulation results into the tables
//! and summaries of the "visualization and analysis tools" box of Fig. 1.

use mermaid_network::CommResult;
use mermaid_stats::table::Align;
use mermaid_stats::Table;

use crate::hybrid::HybridResult;
use crate::slowdown::SlowdownReport;
use crate::tasklevel::TaskLevelResult;

/// Render a per-node summary table of a hybrid run.
pub fn hybrid_table(r: &HybridResult) -> Table {
    let mut t = Table::new([
        "node", "ops", "compute", "send blk", "recv blk", "l1d hit%", "msgs rx",
    ])
    .with_title("Hybrid simulation, per node");
    for (compute, comm) in r.nodes.iter().zip(&r.comm.nodes) {
        let l1d: f64 = compute
            .mem
            .l1d
            .first()
            .map(|s| 100.0 * s.hit_rate())
            .unwrap_or(0.0);
        t.row([
            compute.node.to_string(),
            compute.cpu.ops.total.to_string(),
            format!("{}", comm.proc.compute),
            format!("{}", comm.proc.send_block),
            format!("{}", comm.proc.recv_block),
            format!("{l1d:.1}"),
            comm.proc.msgs_received.to_string(),
        ]);
    }
    t
}

/// Render a task-level run summary.
pub fn task_level_table(r: &TaskLevelResult) -> Table {
    let mut t = Table::new([
        "node", "compute", "send blk", "recv blk", "msgs rx", "bytes tx",
    ])
    .with_title("Task-level simulation, per node");
    for n in &r.comm.nodes {
        t.row([
            n.node.to_string(),
            format!("{}", n.proc.compute),
            format!("{}", n.proc.send_block),
            format!("{}", n.proc.recv_block),
            n.proc.msgs_received.to_string(),
            n.proc.bytes_sent.to_string(),
        ]);
    }
    t
}

/// Render the degraded-mode summary of a fault-injected run: the
/// structured evidence of what the network failed to deliver. Returns
/// `None` when the run saw no degradation (nothing failed, timed out or
/// was dropped).
pub fn degraded_table(comm: &CommResult) -> Option<Table> {
    if !comm.degraded() {
        return None;
    }
    let mut t =
        Table::new(["sender", "dest", "msg seq", "retries", "gave up at"]).with_title(format!(
            "Degraded mode: {} message(s) failed, {} recv timeout(s), {} retransmission(s), \
             {} packet(s) dropped",
            comm.msgs_failed, comm.recv_timeouts, comm.total_retries, comm.total_dropped
        ));
    for u in &comm.unreachable {
        t.row([
            u.src.to_string(),
            u.dst.to_string(),
            u.seq.to_string(),
            u.retries.to_string(),
            format!("{}", u.gave_up),
        ]);
    }
    Some(t)
}

/// Render a slowdown table in the paper's Section 6 shape.
pub fn slowdown_table(rows: &[(String, SlowdownReport)]) -> Table {
    let mut t = Table::new([
        "configuration",
        "procs",
        "sim time",
        "host ms",
        "slowdown/proc",
        "cycles/s",
    ])
    .with_title("Slowdown per simulated processor (paper Section 6)")
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (name, r) in rows {
        t.row([
            name.clone(),
            r.processors.to_string(),
            format!("{}", r.simulated),
            format!("{:.1}", r.host_wall.as_secs_f64() * 1e3),
            format!("{:.1}", r.slowdown_per_processor()),
            format!("{:.0}", r.target_cycles_per_host_second()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridSim;
    use crate::machines::MachineConfig;
    use crate::tasklevel::TaskLevelSim;
    use mermaid_network::Topology;
    use mermaid_tracegen::{CommPattern, SizeDist, StochasticApp, StochasticGenerator};

    #[test]
    fn tables_render_for_real_runs() {
        let app = StochasticApp {
            phases: 2,
            ops_per_phase: SizeDist::Fixed(100),
            pattern: CommPattern::NearestNeighborRing,
            ..StochasticApp::scientific(3)
        };
        let machine = MachineConfig::test_machine(Topology::Ring(3));
        let hybrid =
            HybridSim::new(machine.clone()).run(&StochasticGenerator::new(app, 1).generate());
        let ht = hybrid_table(&hybrid);
        assert_eq!(ht.len(), 3);
        assert!(ht.render().contains("node"));

        let task = TaskLevelSim::new(machine.network)
            .run(&StochasticGenerator::new(app, 1).generate_task_level());
        let tt = task_level_table(&task);
        assert_eq!(tt.len(), 3);
        assert!(tt.to_csv().lines().count() == 4);
    }

    #[test]
    fn slowdown_table_renders() {
        use crate::slowdown::SlowdownMeter;
        let m = SlowdownMeter::start(4, pearl::Frequency::from_mhz(30));
        let rep = m.finish(pearl::Time::from_us(100));
        let t = slowdown_table(&[("t805".to_string(), rep)]);
        let s = t.render();
        assert!(s.contains("t805"));
        assert!(s.contains("slowdown/proc"));
    }
}
