//! Calibration and validation microbenchmarks.
//!
//! The paper's application descriptions "may range from full-blown parallel
//! programs to small benchmarks used to tune and validate the machine
//! parameters of the simulation models" (Section 3). These are those small
//! benchmarks: synthetic probes whose expected behaviour is known in closed
//! form, so a simulated machine can be checked — or an unknown machine's
//! parameters recovered — from the measurements, exactly like `lmbench` on
//! real hardware.

use mermaid_cpu::SingleNodeSim;
use mermaid_network::CommSim;
use mermaid_ops::{DataType, NodeId, Operation, Trace, TraceSet};
use pearl::Duration;

use crate::machines::MachineConfig;

/// One point of the memory-latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StridePoint {
    /// Footprint of the scanned array in bytes.
    pub array_bytes: u64,
    /// Average latency per load.
    pub per_access: Duration,
}

/// The classic strided-scan probe: repeatedly walk an array of a given
/// footprint with a cache-line stride and report the average load latency.
/// As the footprint crosses each cache capacity the latency jumps — the
/// curve recovers the hierarchy's sizes and latencies.
pub fn memory_stride_probe(
    machine: &MachineConfig,
    footprints: &[u64],
    stride: u64,
) -> Vec<StridePoint> {
    footprints
        .iter()
        .map(|&array_bytes| {
            let mut cfg = machine.node_mem.clone();
            cfg.cpus = 1;
            let mut sim = SingleNodeSim::new(machine.cpu, cfg);
            let slots = (array_bytes / stride).max(1);
            // Two full passes warm the caches; measure over several more.
            let passes = 6u64;
            let mut ops = Vec::with_capacity((slots * passes) as usize);
            for _ in 0..passes {
                for s in 0..slots {
                    ops.push(Operation::Load {
                        ty: DataType::I32,
                        addr: 0x10_0000 + s * stride,
                    });
                }
            }
            let warm = 2 * slots;
            let trace = Trace::from_ops(0, ops);
            let r = sim.run(&[&trace]);
            // Discount the warm-up passes by measuring average over all and
            // correcting: total = warm_time + measured; approximate by
            // ignoring the distinction when slots are large. For fidelity,
            // rerun the warm part alone.
            let mut cfg2 = machine.node_mem.clone();
            cfg2.cpus = 1;
            let mut sim2 = SingleNodeSim::new(machine.cpu, cfg2);
            let warm_trace = Trace::from_ops(0, trace.ops[..warm as usize].to_vec());
            let warm_r = sim2.run(&[&warm_trace]);
            let measured = r.finish.since(warm_r.finish);
            let measured_loads = slots * (passes - 2);
            StridePoint {
                array_bytes,
                per_access: measured / measured_loads,
            }
        })
        .collect()
}

/// Find the footprints where the latency curve jumps by more than
/// `threshold` (relative): these are the detected cache-capacity edges.
pub fn detect_capacity_edges(curve: &[StridePoint], threshold: f64) -> Vec<u64> {
    curve
        .windows(2)
        .filter_map(|w| {
            let a = w[0].per_access.as_ps() as f64;
            let b = w[1].per_access.as_ps() as f64;
            (b > a * (1.0 + threshold)).then_some(w[1].array_bytes)
        })
        .collect()
}

/// One point of the ping-pong curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongPoint {
    /// Message payload size.
    pub bytes: u32,
    /// One-way latency (half the measured round trip).
    pub one_way: Duration,
    /// Achieved bandwidth in bytes per second.
    pub bandwidth: f64,
}

/// The classic ping-pong probe between two nodes: round-trip a message of
/// each size `reps` times, report one-way latency and bandwidth. Recovers
/// the link bandwidth (asymptote) and the per-message software+routing
/// overhead (intercept).
pub fn ping_pong(machine: &MachineConfig, sizes: &[u32], reps: u32) -> Vec<PingPongPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let mut ts = TraceSet::new(machine.nodes() as usize);
            let peer: NodeId = 1;
            for _ in 0..reps {
                ts.trace_mut(0).push(Operation::ASend { bytes, dst: peer });
                ts.trace_mut(0).push(Operation::Recv { src: peer });
                ts.trace_mut(peer).push(Operation::Recv { src: 0 });
                ts.trace_mut(peer).push(Operation::ASend { bytes, dst: 0 });
            }
            let r = CommSim::new(machine.network, &ts).run();
            assert!(r.all_done, "ping-pong deadlocked");
            let round_trip = r.finish.since(pearl::Time::ZERO) / reps as u64;
            let one_way = round_trip / 2;
            let bandwidth = bytes as f64 / one_way.as_secs_f64();
            PingPongPoint {
                bytes,
                one_way,
                bandwidth,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;

    #[test]
    fn stride_probe_detects_the_ppc601_cache_sizes() {
        let machine = MachineConfig::powerpc601_node(1);
        let footprints: Vec<u64> = [
            8 << 10,
            16 << 10,
            32 << 10,
            64 << 10,
            128 << 10,
            256 << 10,
            512 << 10,
            1024 << 10,
            2048 << 10,
        ]
        .to_vec();
        let curve = memory_stride_probe(&machine, &footprints, 64);
        // Latency is non-decreasing in footprint.
        for w in curve.windows(2) {
            assert!(
                w[1].per_access >= w[0].per_access,
                "latency dropped at {}",
                w[1].array_bytes
            );
        }
        let edges = detect_capacity_edges(&curve, 0.5);
        // The probe must see the 32 KiB L1 edge (jump at 64 KiB) and the
        // 512 KiB L2 edge (jump at 1 MiB).
        assert!(
            edges.contains(&(64 << 10)),
            "missed the L1 capacity edge: {edges:?}"
        );
        assert!(
            edges.contains(&(1024 << 10)),
            "missed the L2 capacity edge: {edges:?}"
        );
        // In-cache latency matches the configured L1 hit + issue cost.
        let l1 = &curve[0];
        let expect =
            machine.cpu.clock.cycles(machine.cpu.load_cycles) + machine.node_mem.l1d.hit_latency;
        assert_eq!(l1.per_access, expect);
    }

    #[test]
    fn t805_flat_memory_has_no_edges() {
        // The T805's on-chip RAM model: everything ≤4 KiB is one cycle;
        // larger arrays settle on external-memory speed, a single edge.
        let machine = MachineConfig::t805_multicomputer(Topology::Ring(2));
        let curve = memory_stride_probe(
            &machine,
            &[1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10],
            16,
        );
        let edges = detect_capacity_edges(&curve, 0.5);
        assert!(
            edges.len() <= 1,
            "T805 should show at most one edge: {edges:?}"
        );
    }

    #[test]
    fn ping_pong_recovers_the_link_bandwidth() {
        let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
        let curve = ping_pong(&machine, &[64, 1024, 16 * 1024, 256 * 1024], 3);
        // Latency rises with size; bandwidth approaches the configured link
        // rate from below.
        for w in curve.windows(2) {
            assert!(w[1].one_way > w[0].one_way);
            assert!(w[1].bandwidth > w[0].bandwidth);
        }
        let asymptote = curve.last().unwrap().bandwidth;
        let link = machine.network.link.bandwidth_bytes_per_sec as f64;
        assert!(
            asymptote > 0.5 * link && asymptote <= link,
            "asymptote {asymptote:.0} vs link {link:.0}"
        );
    }

    #[test]
    fn small_message_latency_is_overhead_dominated() {
        let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
        let p = &ping_pong(&machine, &[8], 3)[0];
        // One-way latency must exceed the software overheads alone.
        assert!(p.one_way > machine.network.software.send_overhead);
        // And be far above the pure wire time of 8 bytes.
        let wire = machine.network.link.transfer_time(8);
        assert!(p.one_way > wire * 3);
    }
}
