//! Complete machine configurations: CPU + node memory system + network.
//!
//! These are the "architecture X / architecture Y" boxes of Fig. 1 — fully
//! parameterised machine models, with calibrated presets for the two
//! targets of the paper's evaluation (a T805 transputer multicomputer and a
//! PowerPC 601 node with two cache levels).

use mermaid_cpu::CpuParams;
use mermaid_memory::{
    BusParams, CacheParams, CoherenceProtocol, DramParams, MemSystemConfig, Replacement,
    WritePolicy,
};
use mermaid_network::{NetworkConfig, Topology};
use pearl::{Duration, Frequency};
use serde::{Deserialize, Serialize};

/// A complete multicomputer model: identical nodes on an interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Model name for reports.
    pub name: String,
    /// The processor of each node.
    pub cpu: CpuParams,
    /// The memory system of each node (its `cpus` field gives the number of
    /// processors per node — >1 models SMP nodes / hybrid architectures).
    pub node_mem: MemSystemConfig,
    /// The interconnect. Its topology also fixes the node count.
    pub network: NetworkConfig,
}

impl MachineConfig {
    /// Number of nodes (from the network topology).
    pub fn nodes(&self) -> u32 {
        self.network.topology.nodes()
    }

    /// Validate all sub-configurations.
    pub fn validate(&self) {
        self.node_mem.validate();
        self.network.validate();
    }

    /// An Inmos T805 transputer multicomputer (Parsytec GCel class).
    ///
    /// The T805 has no cache: its single-cycle 4 KiB on-chip RAM is
    /// modelled as a 4 KiB one-cycle "L1" over a 3-cycle external DRAM.
    /// Links are 20 Mbit/s with software store-and-forward routing.
    pub fn t805_multicomputer(topology: Topology) -> Self {
        let clock = Frequency::from_mhz(30);
        let onchip = CacheParams {
            size_bytes: 4 * 1024,
            line_bytes: 16,
            assoc: 1,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: clock.cycles(1),
        };
        MachineConfig {
            name: format!("T805 multicomputer, {}", topology.label()),
            cpu: CpuParams::t805(),
            node_mem: MemSystemConfig {
                cpus: 1,
                l1i: onchip,
                l1d: onchip,
                l2: None,
                bus: BusParams {
                    width_bytes: 4,
                    clock,
                    arbitration_cycles: 1,
                },
                dram: DramParams {
                    access_latency: clock.cycles(3),
                    single_server: true,
                },
                protocol: CoherenceProtocol::Msi,
                c2c_latency: clock.cycles(4),
            },
            network: NetworkConfig::t805(topology),
        }
    }

    /// A Motorola PowerPC 601 node with two cache levels (the paper's
    /// detailed single-node model): 32 KiB 8-way L1s at 66 MHz over a
    /// 512 KiB 4-way L2 and 60 MHz 64-bit bus.
    pub fn powerpc601_node(cpus: usize) -> Self {
        let clock = Frequency::from_mhz(66);
        let l1 = CacheParams {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: clock.cycles(1),
        };
        let l2 = CacheParams {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            assoc: 4,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: clock.cycles(9),
        };
        let bus_clock = Frequency::from_mhz(60);
        MachineConfig {
            name: format!("PowerPC 601 node ({cpus} CPU)"),
            cpu: CpuParams::powerpc601(),
            node_mem: MemSystemConfig {
                cpus,
                l1i: l1,
                l1d: l1,
                l2: Some(l2),
                bus: BusParams {
                    width_bytes: 8,
                    clock: bus_clock,
                    arbitration_cycles: 2,
                },
                dram: DramParams {
                    access_latency: Duration::from_ns(180),
                    single_server: true,
                },
                protocol: CoherenceProtocol::Mesi,
                c2c_latency: Duration::from_ns(120),
            },
            // A single node still needs a (degenerate) network object; give
            // clusters a hardware-routed interconnect.
            network: NetworkConfig::hw_routed(Topology::Ring(2)),
        }
    }

    /// A hybrid architecture: PowerPC-601-class SMP nodes (`cpus_per_node`
    /// processors each) connected by a hardware-routed network —
    /// "clusters of shared memory multiprocessors in a message-passing
    /// network" (Section 4.3).
    pub fn powerpc601_cluster(topology: Topology, cpus_per_node: usize) -> Self {
        let mut m = MachineConfig::powerpc601_node(cpus_per_node);
        m.name = format!(
            "PowerPC 601 cluster, {} × {cpus_per_node} CPUs",
            topology.label()
        );
        m.network = NetworkConfig::hw_routed(topology);
        m
    }

    /// An Intel Paragon XP/S-class multicomputer: i860 XP nodes (50 MHz,
    /// 16 KiB split L1 caches) on a 2-D mesh with ~175 MB/s hardware-routed
    /// wormhole links.
    pub fn paragon(w: u32, h: u32) -> Self {
        let clock = Frequency::from_mhz(50);
        let l1 = CacheParams {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            assoc: 4,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: Replacement::Lru,
            hit_latency: clock.cycles(1),
        };
        MachineConfig {
            name: format!("Paragon XP/S, mesh({w}x{h})"),
            cpu: CpuParams::i860xp(),
            node_mem: MemSystemConfig {
                cpus: 1,
                l1i: l1,
                l1d: l1,
                l2: None,
                bus: BusParams {
                    width_bytes: 8,
                    clock,
                    arbitration_cycles: 1,
                },
                dram: DramParams {
                    access_latency: Duration::from_ns(150),
                    single_server: true,
                },
                protocol: CoherenceProtocol::Mesi,
                c2c_latency: Duration::from_ns(100),
            },
            network: NetworkConfig::hw_routed(Topology::Mesh2D { w, h }),
        }
    }

    /// The fast round-number test machine used across the test suites.
    pub fn test_machine(topology: Topology) -> Self {
        MachineConfig {
            name: format!("test machine, {}", topology.label()),
            cpu: CpuParams::uniform_test(),
            node_mem: MemSystemConfig::small(1),
            network: NetworkConfig::test(topology),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 }).validate();
        MachineConfig::powerpc601_node(1).validate();
        MachineConfig::powerpc601_node(4).validate();
        MachineConfig::powerpc601_cluster(Topology::Hypercube { dim: 3 }, 2).validate();
        MachineConfig::test_machine(Topology::Ring(4)).validate();
    }

    #[test]
    fn paragon_preset_validates_and_runs() {
        let m = MachineConfig::paragon(4, 4);
        m.validate();
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.cpu.clock.as_mhz(), 50);
        assert!(m.node_mem.l2.is_none());
    }

    #[test]
    fn node_count_follows_topology() {
        let m = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 8, h: 8 });
        assert_eq!(m.nodes(), 64);
    }

    #[test]
    fn t805_has_no_second_level() {
        let m = MachineConfig::t805_multicomputer(Topology::Ring(2));
        assert!(m.node_mem.l2.is_none());
        assert_eq!(m.node_mem.cpus, 1);
    }

    #[test]
    fn ppc601_has_two_cache_levels() {
        let m = MachineConfig::powerpc601_node(1);
        assert!(m.node_mem.l2.is_some());
        assert_eq!(m.node_mem.l1d.size_bytes, 32 * 1024);
        assert_eq!(m.node_mem.l2.unwrap().size_bytes, 512 * 1024);
    }

    #[test]
    fn configs_serialize_roundtrip() {
        let m = MachineConfig::powerpc601_cluster(Topology::Torus2D { w: 4, h: 4 }, 2);
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
