//! Slowdown measurement — the paper's Section 6 metric.
//!
//! "The slowdown is defined by the number of cycles it takes for the host
//! computer to simulate one cycle of the target architecture." The paper
//! normalises *per simulated processor*: a detailed T805/PowerPC-601
//! simulation showed 750–4 000× per processor on a 143 MHz UltraSPARC;
//! task-level simulation 0.5–4× per processor.
//!
//! Host cycles are wall-clock seconds × a nominal host clock. Set the
//! `MERMAID_HOST_HZ` environment variable to your machine's clock for
//! calibrated numbers; the default of 3 GHz is representative of the
//! build hosts this reproduction targets.

use pearl::{Duration, Frequency, Time};
use std::time::Instant;

/// The nominal host clock used to convert wall time into "host cycles".
pub fn host_frequency() -> Frequency {
    match std::env::var("MERMAID_HOST_HZ")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(hz) if hz > 0 => Frequency::from_hz(hz),
        _ => Frequency::from_ghz(3),
    }
}

/// A slowdown measurement for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownReport {
    /// Wall-clock time the simulation took on the host.
    pub host_wall: std::time::Duration,
    /// Virtual time simulated.
    pub simulated: Duration,
    /// Target-processor count the simulation covered.
    pub processors: u32,
    /// Clock of the simulated processors.
    pub target_clock: Frequency,
    /// Nominal host clock.
    pub host_clock: Frequency,
}

impl SlowdownReport {
    /// Host cycles consumed.
    pub fn host_cycles(&self) -> f64 {
        self.host_wall.as_secs_f64() * self.host_clock.as_hz() as f64
    }

    /// Target cycles simulated (summed over processors: each processor
    /// advanced through the simulated interval).
    pub fn target_cycles_total(&self) -> f64 {
        self.simulated.as_secs_f64() * self.target_clock.as_hz() as f64 * self.processors as f64
    }

    /// The paper's metric: host cycles per simulated target cycle, per
    /// simulated processor.
    pub fn slowdown_per_processor(&self) -> f64 {
        let t = self.target_cycles_total();
        if t == 0.0 {
            f64::INFINITY
        } else {
            self.host_cycles() / t
        }
    }

    /// Simulated target cycles per host second (the paper's alternative
    /// statement: "an UltraSPARC … roughly simulates between 30,000 and
    /// 200,000 cycles per second").
    pub fn target_cycles_per_host_second(&self) -> f64 {
        let w = self.host_wall.as_secs_f64();
        if w == 0.0 {
            f64::INFINITY
        } else {
            self.target_cycles_total() / self.processors.max(1) as f64 / w
        }
    }
}

/// Times a simulation run and derives its slowdown.
pub struct SlowdownMeter {
    start: Instant,
    processors: u32,
    target_clock: Frequency,
}

impl SlowdownMeter {
    /// Start timing a run of `processors` simulated CPUs at `target_clock`.
    pub fn start(processors: u32, target_clock: Frequency) -> Self {
        SlowdownMeter {
            start: Instant::now(),
            processors,
            target_clock,
        }
    }

    /// Stop timing; `simulated_until` is the virtual time the run reached.
    pub fn finish(self, simulated_until: Time) -> SlowdownReport {
        SlowdownReport {
            host_wall: self.start.elapsed(),
            simulated: simulated_until.since(Time::ZERO),
            processors: self.processors,
            target_clock: self.target_clock,
            host_clock: host_frequency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host_ms: u64, sim: Duration, procs: u32) -> SlowdownReport {
        SlowdownReport {
            host_wall: std::time::Duration::from_millis(host_ms),
            simulated: sim,
            processors: procs,
            target_clock: Frequency::from_mhz(100),
            host_clock: Frequency::from_ghz(1),
        }
    }

    #[test]
    fn slowdown_arithmetic() {
        // Host: 1 s at 1 GHz = 1e9 cycles. Target: 1 ms at 100 MHz × 1 proc
        // = 1e5 cycles. Slowdown = 1e4.
        let r = report(1000, Duration::from_ms(1), 1);
        assert!((r.slowdown_per_processor() - 1e4).abs() / 1e4 < 1e-9);
        // Per-processor normalisation: 10 processors → 10× lower.
        let r10 = report(1000, Duration::from_ms(1), 10);
        assert!((r10.slowdown_per_processor() - 1e3).abs() / 1e3 < 1e-9);
    }

    #[test]
    fn cycles_per_second_inverse_relation() {
        let r = report(1000, Duration::from_ms(1), 1);
        // 1e5 target cycles in 1 host second.
        assert!((r.target_cycles_per_host_second() - 1e5).abs() < 1.0);
    }

    #[test]
    fn zero_simulated_time_is_infinite_slowdown() {
        let r = report(10, Duration::ZERO, 1);
        assert!(r.slowdown_per_processor().is_infinite());
    }

    #[test]
    fn meter_measures_elapsed_time() {
        let m = SlowdownMeter::start(2, Frequency::from_mhz(50));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r = m.finish(Time::from_us(10));
        assert!(r.host_wall >= std::time::Duration::from_millis(5));
        assert_eq!(r.processors, 2);
        assert_eq!(r.simulated, Duration::from_us(10));
    }

    #[test]
    fn host_frequency_env_override() {
        // Default path (no env var in the test environment, or a value):
        // must return something positive.
        assert!(host_frequency().as_hz() > 0);
    }
}
