//! Run-time observation of a simulation in progress.
//!
//! "Visualization of simulation data can be performed both at run-time and
//! post-mortem" (paper, Section 3). This module is the run-time half: it
//! steps a communication simulation in event batches, sampling progress
//! into time series that can be rendered live (sparklines, progress
//! callbacks) or kept for post-mortem analysis.

use mermaid_network::{CommResult, CommSim, NetworkConfig};
use mermaid_ops::TraceSet;
use mermaid_probe::ProbeHandle;
use mermaid_stats::TimeSeries;

/// A progress sample taken during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Virtual time reached.
    pub virtual_ps: u64,
    /// Events processed so far.
    pub events: u64,
    /// Messages delivered so far.
    pub messages: u64,
    /// Nodes that have completed their traces.
    pub nodes_done: u32,
}

/// Time series collected by an observed run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Messages delivered over virtual time.
    pub messages: TimeSeries,
    /// Nodes finished over virtual time.
    pub nodes_done: TimeSeries,
    /// Events processed over virtual time (simulation effort).
    pub events: TimeSeries,
}

impl RunTrace {
    fn new() -> Self {
        RunTrace {
            messages: TimeSeries::new("messages"),
            nodes_done: TimeSeries::new("nodes_done"),
            events: TimeSeries::new("events"),
        }
    }
}

/// Observe a task-level simulation as it runs: every `batch` events, take a
/// sample, record it, and hand it to `on_sample` (the run-time
/// visualisation hook). Returns the final result and the recorded series.
pub fn observe_task_level(
    network: NetworkConfig,
    traces: &TraceSet,
    batch: u64,
    on_sample: impl FnMut(&ProgressSample),
) -> (CommResult, RunTrace) {
    observe_task_level_probed(network, traces, batch, ProbeHandle::disabled(), on_sample)
}

/// [`observe_task_level`] with an instrumentation handle attached: the
/// progress samples (run-time half) and the probe's sinks (post-mortem
/// half) then share one event source, as the paper's Section 3 describes.
/// Pass [`ProbeHandle::disabled`] for plain observation.
pub fn observe_task_level_probed(
    network: NetworkConfig,
    traces: &TraceSet,
    batch: u64,
    probe: ProbeHandle,
    mut on_sample: impl FnMut(&ProgressSample),
) -> (CommResult, RunTrace) {
    assert!(batch > 0, "batch must be positive");
    let mut sim = CommSim::new_with_probe(network, traces, probe);
    let mut run = RunTrace::new();
    loop {
        let snapshot = sim.run_events(batch);
        let sample = ProgressSample {
            virtual_ps: sim.now().as_ps(),
            events: snapshot.events,
            messages: snapshot.total_messages,
            // Derived from per-node completion state; `deadlocked` is no
            // substitute mid-run (a node that has not finished *yet* is
            // not deadlocked).
            nodes_done: snapshot.nodes_done(),
        };
        run.messages.push(sample.virtual_ps, sample.messages as f64);
        run.nodes_done
            .push(sample.virtual_ps, sample.nodes_done as f64);
        run.events.push(sample.virtual_ps, sample.events as f64);
        on_sample(&sample);
        if sim.is_idle() {
            return (snapshot, run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;
    use mermaid_ops::Operation;

    fn ring_traces(n: u32, phases: u32) -> TraceSet {
        let mut ts = TraceSet::new(n as usize);
        for node in 0..n {
            for _ in 0..phases {
                ts.trace_mut(node).push(Operation::Compute { ps: 10_000 });
                ts.trace_mut(node).push(Operation::ASend {
                    bytes: 512,
                    dst: (node + 1) % n,
                });
                ts.trace_mut(node).push(Operation::Recv {
                    src: (node + n - 1) % n,
                });
            }
        }
        ts
    }

    #[test]
    fn observation_matches_an_unobserved_run() {
        let ts = ring_traces(4, 5);
        let net = NetworkConfig::test(Topology::Ring(4));
        let mut samples = 0;
        let (observed, run) = observe_task_level(net, &ts, 16, |_| samples += 1);
        let plain = CommSim::new(net, &ts).run();
        assert_eq!(observed.finish, plain.finish);
        assert_eq!(observed.total_messages, plain.total_messages);
        assert!(samples > 1, "should sample repeatedly");
        assert_eq!(run.messages.len() as u64, samples);
        // Message count is monotone over virtual time.
        let vals: Vec<f64> = run.messages.samples().iter().map(|&(_, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*vals.last().unwrap(), plain.total_messages as f64);
    }

    #[test]
    fn samples_see_intermediate_progress() {
        let ts = ring_traces(4, 10);
        let net = NetworkConfig::test(Topology::Ring(4));
        let mut mid_messages = Vec::new();
        let (result, _) = observe_task_level(net, &ts, 8, |s| mid_messages.push(s.messages));
        // At least one sample strictly between zero and the final count.
        assert!(mid_messages
            .iter()
            .any(|&m| m > 0 && m < result.total_messages));
    }

    /// Regression: intermediate samples must track per-node completion —
    /// `nodes_done` climbs monotonically through strictly intermediate
    /// counts as staggered nodes finish, and no mid-run sample reports a
    /// deadlock.
    #[test]
    fn nodes_done_tracks_per_node_completion_mid_run() {
        let n = 4u32;
        let mut ts = TraceSet::new(n as usize);
        for node in 0..n {
            // Strongly staggered compute-only traces: nodes finish one by
            // one, far apart in virtual time.
            ts.trace_mut(node).push(Operation::Compute {
                ps: 10_000 * (node as u64 + 1),
            });
        }
        let net = NetworkConfig::test(Topology::Ring(4));
        let mut done_counts = Vec::new();
        let (result, run) = observe_task_level(net, &ts, 1, |s| done_counts.push(s.nodes_done));
        assert!(result.all_done);
        assert!(
            done_counts.windows(2).all(|w| w[1] >= w[0]),
            "nodes_done not monotone: {done_counts:?}"
        );
        assert_eq!(*done_counts.last().unwrap(), n);
        assert!(
            done_counts.iter().any(|&d| d > 0 && d < n),
            "no strictly intermediate completion count: {done_counts:?}"
        );
        let series: Vec<f64> = run.nodes_done.samples().iter().map(|&(_, v)| v).collect();
        assert_eq!(*series.last().unwrap(), n as f64);
    }

    /// The run-time half (progress samples) and the post-mortem half (probe
    /// sinks) observe the same run without perturbing it.
    #[test]
    fn probed_observation_shares_the_event_source() {
        use mermaid_probe::ProbeStack;
        let ts = ring_traces(4, 5);
        let net = NetworkConfig::test(Topology::Ring(4));
        let probe = ProbeHandle::new(ProbeStack::new().with_metrics().with_chrome());
        let mut samples = 0;
        let (observed, _) =
            observe_task_level_probed(net, &ts, 16, probe.clone(), |_| samples += 1);
        let plain = CommSim::new(net, &ts).run();
        assert_eq!(observed.finish, plain.finish);
        assert_eq!(observed.events, plain.events);
        assert!(samples > 1);
        let json = probe.chrome_trace_json().unwrap();
        let summary = mermaid_probe::validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.delivered_messages, Some(plain.total_messages));
        assert_eq!(summary.finish_ps, Some(plain.finish.as_ps()));
        let report = probe.metrics_report(observed.finish.as_ps()).unwrap();
        assert!(report.render().contains("engine/deliveries"));
    }

    #[test]
    fn sparkline_renders_from_the_run_trace() {
        let ts = ring_traces(4, 5);
        let net = NetworkConfig::test(Topology::Ring(4));
        let (_, run) = observe_task_level(net, &ts, 16, |_| {});
        let sl = mermaid_stats::chart::sparkline(&run.messages, 20);
        assert!(!sl.is_empty());
    }
}
