//! The workbench command-line tool: a thin wrapper around
//! [`mermaid::cli::run`], which holds the whole driver (subcommand
//! parsing, simulation dispatch, report rendering) so that integration
//! tests can execute exact CLI invocations in-process.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mermaid::cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", mermaid::cli::usage());
            ExitCode::FAILURE
        }
    }
}
