//! # mermaid — an architecture workbench for multicomputers
//!
//! A from-scratch Rust reproduction of the **Mermaid** simulation
//! environment (A.D. Pimentel and L.O. Hertzberger, *An Architecture
//! Workbench for Multicomputers*, IPPS 1997): a workbench for evaluating
//! MIMD distributed-memory machines, shared-memory multiprocessors, and
//! hybrid architectures by simulation at the level of *abstract machine
//! instructions* rather than real instructions.
//!
//! ## The two abstraction levels
//!
//! * **Detailed (hybrid) mode** — [`HybridSim`]: each node's
//!   instruction-level trace runs through the single-node *computational
//!   model* (CPU + caches + bus + DRAM), which measures the simulated time
//!   between communication operations and emits *computational tasks*; the
//!   multi-node *communication model* (abstract processors + routers +
//!   links) then resolves the message passing (paper, Fig. 2).
//! * **Task-level mode** — [`TaskLevelSim`]: for fast prototyping, the
//!   communication model alone consumes task-level traces produced directly
//!   by a trace generator. "An entire multicomputer can be simulated with
//!   only a minor slowdown" (Section 6).
//!
//! Shared-memory multiprocessors are simulated by configuring the
//! computational model with several processors
//! ([`mermaid_cpu::SingleNodeSim`]); hybrid machines by putting
//! multiprocessor nodes behind the message-passing network (Section 4.3).
//!
//! ## Quick start
//!
//! ```
//! use mermaid::prelude::*;
//!
//! // Describe the application stochastically: 4 nodes, scientific mix.
//! let app = StochasticApp::scientific(4);
//! let traces = StochasticGenerator::new(app, 42).generate();
//!
//! // Describe the machine: a 4-node T805 multicomputer on a ring.
//! let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
//!
//! // Detailed simulation.
//! let result = HybridSim::new(machine).run(&traces);
//! assert!(result.predicted_time > pearl::Time::ZERO);
//! ```

pub mod campaign;
pub mod cli;
pub mod direct;
pub mod hybrid;
pub mod machines;
pub mod memuse;
pub mod microbench;
pub mod observer;
pub mod report;
pub mod slowdown;
pub mod smp;
pub mod sweep;
pub mod tasklevel;

pub use campaign::{CampaignRecord, CampaignSpec, RunConfig};
pub use direct::{DirectExecSim, DirectExecStaticCosts};
pub use hybrid::{HybridResult, HybridSim, NodeComputeStats};
pub use machines::MachineConfig;
pub use memuse::ModelFootprint;
pub use microbench::{detect_capacity_edges, memory_stride_probe, ping_pong};
pub use observer::{observe_task_level, observe_task_level_probed, ProgressSample, RunTrace};
pub use slowdown::{host_frequency, SlowdownMeter, SlowdownReport};
pub use smp::{SmpHybridResult, SmpHybridSim, SmpWorkload};
pub use sweep::{labelled_sweep, parallel_sweep, parallel_sweep_streaming};
pub use tasklevel::{TaskLevelResult, TaskLevelSim};

/// The instrumentation layer (re-exported from `mermaid-probe`): attach a
/// [`probe::ProbeHandle`] to a simulator to collect metrics, Chrome
/// traces, JSONL event streams, and host-side profiles from a run.
pub use mermaid_probe as probe;

/// Convenient re-exports of the workbench's moving parts.
pub mod prelude {
    pub use crate::direct::DirectExecSim;
    pub use crate::hybrid::{HybridResult, HybridSim};
    pub use crate::machines::MachineConfig;
    pub use crate::slowdown::SlowdownMeter;
    pub use crate::tasklevel::TaskLevelSim;
    pub use mermaid_cpu::{CpuParams, SingleNodeSim};
    pub use mermaid_memory::MemSystemConfig;
    pub use mermaid_network::{NetworkConfig, Topology};
    pub use mermaid_ops::{Operation, Trace, TraceSet};
    pub use mermaid_probe::{ProbeHandle, ProbeStack};
    pub use mermaid_tracegen::{
        CommPattern, InstructionMix, SizeDist, StochasticApp, StochasticGenerator,
    };
}
