//! The hybrid (detailed) simulation mode — Fig. 2 of the paper.
//!
//! Each node's instruction-level trace is simulated by the single-node
//! *computational model* (CPU + cache hierarchy + bus + DRAM), which
//! measures the simulated time between consecutive communication
//! operations and converts the runs into `compute` *tasks*. The resulting
//! task-level traces then drive the multi-node *communication model*,
//! which resolves message timing, contention, and blocking.
//!
//! Because Mermaid operations carry no data values, an application's
//! control flow never depends on message contents — it is fixed by the
//! trace generator (which resolves all loops and branches). The
//! computational phase of each node can therefore be simulated
//! node-by-node (open loop) without loss of validity; what *does* depend
//! on the architecture — the interleaving and timing of global events — is
//! resolved afterwards by the communication model. Trace *generation*
//! still uses physical-time interleaving (see `mermaid-tracegen`) so that
//! generating threads never run ahead of the simulator.

use std::sync::Arc;

use mermaid_cpu::{CpuStats, SingleNodeSim};
use mermaid_memory::{MemStats, MemSystemConfig};
use mermaid_network::{
    run_checkpointed_with, CommResult, CommSim, FaultSchedule, ShardProfile, Speculation,
};
use mermaid_ops::{NodeId, Trace, TraceSet};
use mermaid_probe::ProbeHandle;
use mermaid_tracegen::InterleavedTraceGen;
use pearl::{Duration, Time};

use crate::machines::MachineConfig;

/// Computational-model statistics of one node.
#[derive(Debug)]
pub struct NodeComputeStats {
    /// The node.
    pub node: NodeId,
    /// CPU statistics (operation mix, compute/memory split).
    pub cpu: CpuStats,
    /// Memory-system statistics (cache hits, bus, DRAM).
    pub mem: MemStats,
    /// Total task time extracted for this node.
    pub compute_total: Duration,
}

/// Result of a detailed (hybrid) simulation.
#[derive(Debug)]
pub struct HybridResult {
    /// Predicted execution time of the application on the target machine.
    pub predicted_time: Time,
    /// Per-node computational-model statistics.
    pub nodes: Vec<NodeComputeStats>,
    /// The intermediate task-level traces (inspectable/reusable).
    pub task_traces: TraceSet,
    /// Communication-model results.
    pub comm: CommResult,
    /// Instruction-level operations simulated (for slowdown accounting).
    pub ops_simulated: u64,
    /// Shard self-profile of a sharded communication phase (`None` when
    /// the run was serial). Host-wall-clock data, kept outside `comm` so
    /// determinism checks over the model results are unaffected.
    pub shard_profile: Option<ShardProfile>,
}

/// The hybrid simulator: detailed mode of the workbench.
pub struct HybridSim {
    machine: MachineConfig,
    probe: ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
    speculation: Speculation,
}

impl HybridSim {
    /// Create a hybrid simulator for the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        machine.validate();
        HybridSim {
            machine,
            probe: ProbeHandle::disabled(),
            shards: 1,
            faults: None,
            speculation: Speculation::default(),
        }
    }

    /// Attach an instrumentation handle: both halves of the hybrid run —
    /// the per-node computational models (cache/bus events) and the
    /// communication model (activations, messages, links, the engine) —
    /// record into it. Observation only; predicted times are unchanged.
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Run the communication phase on `shards` worker threads (builder
    /// style). The computational phase is per-node and unaffected; sharded
    /// communication produces bit-identical results to the serial path.
    /// `1` (the default) keeps the single-threaded path.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enable deterministic fault injection for the communication phase
    /// (builder style): scripted link/router faults plus seeded transient
    /// packet loss/corruption, with the ack/retry/backoff reliability
    /// protocol armed. The computational phase is unaffected; serial and
    /// sharded runs stay bit-identical under the same schedule.
    pub fn with_faults(mut self, faults: Option<Arc<FaultSchedule>>) -> Self {
        self.faults = faults;
        self
    }

    /// Set the speculative-window policy for a sharded communication
    /// phase (builder style). Scheduling only: results are bit-identical
    /// across every policy. Ignored by serial runs.
    pub fn with_speculation(mut self, speculation: Speculation) -> Self {
        self.speculation = speculation;
        self
    }

    /// Run the communication model over already-extracted task-level
    /// traces, honouring the configured shard count and fault schedule.
    fn run_comm(&self, task_traces: &TraceSet) -> (CommResult, Option<ShardProfile>) {
        if self.shards > 1 {
            run_checkpointed_with(
                self.machine.network,
                task_traces,
                self.probe.clone(),
                self.shards,
                self.faults.clone(),
                None,
                None,
                self.speculation,
            )
            .expect("a run without checkpoint options cannot fail")
        } else {
            let comm = match &self.faults {
                Some(f) => CommSim::new_with_faults(
                    self.machine.network,
                    task_traces,
                    self.probe.clone(),
                    Arc::clone(f),
                )
                .run(),
                None => {
                    CommSim::new_with_probe(self.machine.network, task_traces, self.probe.clone())
                        .run()
                }
            };
            (comm, None)
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Run the detailed simulation over instruction-level traces (one per
    /// node).
    pub fn run(&self, traces: &TraceSet) -> HybridResult {
        assert_eq!(
            traces.nodes() as u32,
            self.machine.nodes(),
            "trace set has {} nodes, machine has {}",
            traces.nodes(),
            self.machine.nodes()
        );
        let mut task_traces = Vec::with_capacity(traces.nodes());
        let mut nodes = Vec::with_capacity(traces.nodes());
        let mut ops_simulated = 0u64;
        for trace in traces.iter() {
            ops_simulated += trace.len() as u64;
            let (task, stats) = self.extract_node(trace);
            task_traces.push(task);
            nodes.push(stats);
        }
        let task_traces = TraceSet::from_traces(task_traces);
        let (comm, shard_profile) = self.run_comm(&task_traces);
        HybridResult {
            predicted_time: comm.finish,
            nodes,
            task_traces,
            comm,
            ops_simulated,
            shard_profile,
        }
    }

    /// Run the detailed simulation *execution-driven*: pull operations from
    /// a physical-time-interleaved trace generator (one thread per node),
    /// resuming each node's thread only after its global event has been
    /// recorded. Equivalent to generating the full traces first (control
    /// flow is value-independent) but with flat memory consumption.
    pub fn run_from_generator(&self, mut gen: InterleavedTraceGen) -> HybridResult {
        assert_eq!(
            gen.node_count() as u32,
            self.machine.nodes(),
            "generator has {} nodes, machine has {}",
            gen.node_count(),
            self.machine.nodes()
        );
        let single = self.single_node_config();
        let mut task_traces = Vec::new();
        let mut nodes = Vec::new();
        let mut ops_simulated = 0u64;
        for node in 0..self.machine.nodes() {
            // Stream the node's operations through the computational model.
            let mut sim = SingleNodeSim::new(self.machine.cpu, single.clone());
            sim.set_probe(node, self.probe.clone());
            let mut chunk = Trace::new(node);
            let mut task = Trace::new(node);
            let mut compute_total = Duration::ZERO;
            while let Some(op) = gen.next_op(node) {
                if op.is_global_event() {
                    ops_simulated += chunk.len() as u64 + 1;
                    let x = sim.extract_tasks(&chunk);
                    compute_total += x.compute_total;
                    task.ops.extend(x.task_trace.ops);
                    task.push(op);
                    chunk.ops.clear();
                    gen.resume(node);
                } else {
                    chunk.push(op);
                }
            }
            if !chunk.is_empty() {
                ops_simulated += chunk.len() as u64;
                let x = sim.extract_tasks(&chunk);
                compute_total += x.compute_total;
                task.ops.extend(x.task_trace.ops);
            }
            let x = sim.extract_tasks(&Trace::new(node));
            nodes.push(NodeComputeStats {
                node,
                cpu: x.cpu_stats,
                mem: x.mem_stats,
                compute_total,
            });
            task_traces.push(task);
        }
        let task_traces = TraceSet::from_traces(task_traces);
        let (comm, shard_profile) = self.run_comm(&task_traces);
        HybridResult {
            predicted_time: comm.finish,
            nodes,
            task_traces,
            comm,
            ops_simulated,
            shard_profile,
        }
    }

    /// The memory configuration of one node restricted to a single CPU
    /// (the computational model instance that backs task extraction).
    fn single_node_config(&self) -> MemSystemConfig {
        let mut cfg = self.machine.node_mem.clone();
        cfg.cpus = 1;
        cfg
    }

    fn extract_node(&self, trace: &Trace) -> (Trace, NodeComputeStats) {
        let mut sim = SingleNodeSim::new(self.machine.cpu, self.single_node_config());
        sim.set_probe(trace.node, self.probe.clone());
        let x = sim.extract_tasks(trace);
        (
            x.task_trace,
            NodeComputeStats {
                node: trace.node,
                cpu: x.cpu_stats,
                mem: x.mem_stats,
                compute_total: x.compute_total,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;
    use mermaid_ops::{ArithOp, DataType};
    use mermaid_tracegen::annotate::TargetLayout;
    use mermaid_tracegen::{CommPattern, SizeDist, StochasticApp, StochasticGenerator};

    fn machine(n: u32) -> MachineConfig {
        MachineConfig::test_machine(Topology::Ring(n))
    }

    fn stochastic_traces(n: u32, seed: u64) -> TraceSet {
        let app = StochasticApp {
            phases: 3,
            ops_per_phase: SizeDist::Fixed(300),
            pattern: CommPattern::NearestNeighborRing,
            ..StochasticApp::scientific(n)
        };
        StochasticGenerator::new(app, seed).generate()
    }

    #[test]
    fn hybrid_run_produces_consistent_results() {
        let traces = stochastic_traces(4, 1);
        let r = HybridSim::new(machine(4)).run(&traces);
        assert!(r.comm.all_done, "deadlocked: {:?}", r.comm.deadlocked);
        assert!(r.predicted_time > Time::ZERO);
        assert_eq!(r.nodes.len(), 4);
        assert_eq!(r.ops_simulated, traces.total_ops() as u64);
        // Every node's predicted time ≥ its pure compute time.
        for n in &r.nodes {
            assert!(r.predicted_time >= Time::ZERO + n.compute_total);
        }
        // Task traces carry only task-level operations.
        for t in r.task_traces.iter() {
            assert!(t.iter().all(|o| !o.is_computational()));
        }
    }

    #[test]
    fn hybrid_is_deterministic() {
        let traces = stochastic_traces(4, 2);
        let a = HybridSim::new(machine(4)).run(&traces);
        let b = HybridSim::new(machine(4)).run(&traces);
        assert_eq!(a.predicted_time, b.predicted_time);
        assert_eq!(a.task_traces, b.task_traces);
    }

    #[test]
    fn slower_cpu_predicts_longer_time() {
        let traces = stochastic_traces(2, 3);
        let fast = HybridSim::new(machine(2)).run(&traces);
        let mut slow_machine = machine(2);
        slow_machine.cpu.clock = pearl::Frequency::from_mhz(10);
        let slow = HybridSim::new(slow_machine).run(&traces);
        assert!(slow.predicted_time > fast.predicted_time);
    }

    #[test]
    fn slower_network_predicts_longer_time() {
        let traces = stochastic_traces(2, 4);
        let fast = HybridSim::new(machine(2)).run(&traces);
        let mut slow_machine = machine(2);
        slow_machine.network.link.bandwidth_bytes_per_sec = 1_000_000;
        let slow = HybridSim::new(slow_machine).run(&traces);
        assert!(slow.predicted_time > fast.predicted_time);
    }

    #[test]
    fn generator_driven_run_matches_batch_run() {
        // The same instrumented program via batch traces and via the
        // threaded generator must predict the same time.
        let n = 4u32;
        let program = move |ctx: &mut mermaid_tracegen::NodeCtx| {
            use mermaid_tracegen::annotate::Annotator;
            let me = ctx.node();
            let x = ctx.local("x", DataType::F64, 1);
            for _ in 0..50 {
                ctx.load(x);
                ctx.arith(ArithOp::Mul, DataType::F64);
                ctx.store(x);
            }
            ctx.asend(256, (me + 1) % n);
            ctx.recv((me + n - 1) % n);
        };
        let batch_traces =
            InterleavedTraceGen::spawn(n, TargetLayout::default(), program).collect_all();
        let batch = HybridSim::new(machine(n)).run(&batch_traces);

        let gen = InterleavedTraceGen::spawn(n, TargetLayout::default(), program);
        let streamed = HybridSim::new(machine(n)).run_from_generator(gen);

        assert_eq!(batch.predicted_time, streamed.predicted_time);
        assert_eq!(batch.task_traces, streamed.task_traces);
        assert_eq!(batch.ops_simulated, streamed.ops_simulated);
    }

    #[test]
    fn probed_hybrid_run_is_bit_identical_to_untraced() {
        use mermaid_probe::{ProbeHandle, ProbeStack};
        let traces = stochastic_traces(4, 7);
        let plain = HybridSim::new(machine(4)).run(&traces);
        let probe = ProbeHandle::new(ProbeStack::new().with_metrics().with_chrome());
        let probed = HybridSim::new(machine(4))
            .with_probe(probe.clone())
            .run(&traces);
        assert_eq!(plain.predicted_time, probed.predicted_time);
        assert_eq!(plain.task_traces, probed.task_traces);
        assert_eq!(plain.comm.total_messages, probed.comm.total_messages);
        // Both halves fed the probe: cache events from the computational
        // models and engine/message events from the communication model.
        let report = probe.metrics_report(probed.predicted_time.as_ps()).unwrap();
        let text = report.render();
        assert!(text.contains("engine/deliveries"), "{text}");
        assert!(text.contains("mem0/"), "{text}");
    }

    #[test]
    #[should_panic(expected = "trace set has")]
    fn node_count_mismatch_is_rejected() {
        let traces = stochastic_traces(3, 5);
        HybridSim::new(machine(4)).run(&traces);
    }

    #[test]
    fn t805_machine_runs_end_to_end() {
        let traces = stochastic_traces(4, 6);
        let m = MachineConfig::t805_multicomputer(Topology::Ring(4));
        let r = HybridSim::new(m).run(&traces);
        assert!(r.comm.all_done);
        // The transputer at 30 MHz doing thousands of float ops plus
        // software-routed messaging: predicted time must be substantial
        // (≥ 100 µs).
        assert!(
            r.predicted_time >= Time::from_us(100),
            "{}",
            r.predicted_time
        );
    }
}
