//! The workbench command-line driver, as a library.
//!
//! The `mermaid-cli` binary is a thin wrapper around [`run`]; keeping the
//! whole driver here lets integration tests (for example the golden-file
//! CLI snapshots in `tests/golden_cli.rs`) execute exact CLI invocations
//! in-process and assert on the rendered output.
//!
//! ```text
//! mermaid-cli table1
//! mermaid-cli topo <ring:N | mesh:WxH | torus:WxH | hypercube:D | full:N | star:N>
//! mermaid-cli machines
//! mermaid-cli simulate --machine <t805|ppc601|paragon|test> --topology <spec>
//!                      [--app <scientific|integer>] [--pattern <name>]
//!                      [--phases N] [--ops N] [--seed N]
//!                      [--mode <detailed|task|direct>] [--watch]
//!                      [--shards <N|auto>] [--shard-profile] [--speculate <on|off|ps>]
//!                      [--faults <spec|file>] [--fault-seed N]
//!                      [--trace-out <file>] [--metrics] [--attribution <file>]
//!                      [--checkpoint-every <ps> --checkpoint-dir <dir>] [--restore <file>]
//! mermaid-cli analyze [same workload flags as simulate] [--json <file>]
//! mermaid-cli probe --machine <t805|ppc601|paragon|test> [--topology <spec>]
//! mermaid-cli campaign <spec|file> --out <dir> [--jobs <N|auto>] [--limit N] [--dry-run]
//!                      [--attribution] [--checkpoint <ps>]
//! ```
//!
//! `sim` is an alias for `simulate`. `--trace-out` writes a Chrome-trace
//! JSON file of the run (open in `chrome://tracing` or Perfetto);
//! `--metrics` appends the per-component metrics report and a host-side
//! profile of the simulator itself. `--shards` runs the communication
//! model on N worker threads (`auto` = one per host core); sharded runs
//! are bit-identical to single-threaded ones — with or without faults.
//! `--speculate` controls the speculative-window policy of sharded runs
//! (`on` = the default adaptive threshold, `off` = conservative windows
//! only, or an explicit window-width threshold in picoseconds); it is a
//! scheduling knob only and never changes results (DESIGN.md §17).
//!
//! `analyze` answers "where did the time go": it runs the simulation with
//! the bottleneck-attribution sink attached and renders the latency
//! decomposition (serialization / wire / routing / queueing / retry
//! components of every delivered message), the hottest links and routers,
//! and an ASCII utilization heatmap. `--json <file>` additionally writes
//! the machine-readable `attribution.json`. The same report is available
//! from a normal run via `sim --attribution <file>`. Attribution output is
//! deterministic and byte-identical between serial and sharded runs.
//! `--shard-profile` (sharded runs only) appends each worker's self-profile
//! — barrier wait versus event-execution time, window occupancy,
//! cross-shard message volume; host wall-clock, so *not* deterministic.
//!
//! `--faults` enables deterministic fault injection in the communication
//! model. Its value is either an inline spec or the path of a file holding
//! one (the file wins when it exists). Clauses are separated by `;` or
//! newlines, times are simulated nanoseconds:
//!
//! ```text
//! link:0-1:1000:5000      # cut link 0↔1 at 1 µs, heal at 5 µs
//! router:3:2000           # crash router 3 at 2 µs, never recovers
//! drop:1000               # lose 0.1% of packets per link traversal
//! corrupt:500             # corrupt 0.05% (detected + dropped by checksum)
//! retries:6 ; timeout:2000 ; cap:32000 ; recv-timeout:1000000
//! ```
//!
//! `campaign` expands a declarative grid spec (see [`crate::campaign`] and
//! DESIGN.md §13) into a deterministic run list, fans it out over worker
//! threads, and streams one JSONL record per completed run into
//! `<out>/runs.jsonl` (plus an RFC-4180 CSV view in `<out>/summary.csv`).
//! Re-running the same campaign skips every already-recorded run —
//! interrupt it freely. `--limit N` executes at most N new runs,
//! `--dry-run` prints the expanded run list without simulating.
//!
//! Checkpointing (DESIGN.md §16): `sim --checkpoint-every <ps>
//! --checkpoint-dir <dir>` snapshots a task-mode run's full simulation
//! state every `<ps>` simulated picoseconds into versioned
//! `ckpt-<config-hash>-<time-ps>.snap` files; `sim --restore <file>`
//! resumes one and produces byte-identical output to the uninterrupted
//! run (serial and sharded alike). `campaign --checkpoint <ps>` gives
//! every task-mode run a rolling mid-run checkpoint under
//! `<out>/checkpoints/`, so a killed campaign resumes long runs from
//! their last snapshot instead of from scratch.

use mermaid_network::{
    run_checkpointed_with, CheckpointOpts, CommResult, FaultSchedule, RetryParams, Snapshot,
    SnapshotError, Speculation, Topology,
};
use mermaid_ops::table1;
use std::sync::Arc;

use crate::prelude::*;
use crate::{observer, report, DirectExecSim, SlowdownMeter};

/// The CLI usage text.
pub fn usage() -> &'static str {
    "usage:\n  mermaid-cli table1\n  mermaid-cli topo <spec>\n  mermaid-cli machines\n  \
     mermaid-cli simulate --machine <name> --topology <spec> [--app <mix>] [--pattern <p>] \
     [--phases N] [--ops N] [--seed N] [--mode <detailed|task|direct>] [--watch] \
     [--shards <N|auto>] [--shard-profile] [--speculate <on|off|ps>] \
     [--faults <spec|file>] [--fault-seed N] \
     [--trace-out <file>] [--metrics] [--attribution <file>] \
     [--checkpoint-every <ps> --checkpoint-dir <dir>] [--restore <file>]\n  \
     mermaid-cli analyze [same workload flags as simulate] [--json <file>]\n  \
     mermaid-cli probe --machine <name> [--topology <spec>]\n  \
     mermaid-cli campaign <spec|file> --out <dir> [--jobs <N|auto>] [--limit N] [--dry-run] \
     [--attribution] [--checkpoint <ps>]\n\n\
     `sim` is an alias for `simulate`. `analyze` renders the bottleneck-attribution \
     report (latency decomposition, hottest links/routers, utilization heatmap).\n\
     topology specs: ring:8  mesh:4x4  torus:4x4  hypercube:3  full:8  star:8\n\
     fault specs:    link:0-1:1000:5000  router:3:2000  drop:1000  corrupt:500\n\
                     retries:6  timeout:2000  cap:32000  recv-timeout:1000000\n\
                     (times in simulated ns; `;` or newline separates clauses)\n\
     campaign spec:  topo = ring:8, torus:4x4; pattern = ring, all2all; seed = 1, 2\n\
                     (key = value list per clause; see DESIGN.md section 13)"
}

/// Parsed command-line options (after the subcommand).
#[derive(Debug, Default)]
struct Opts {
    machine: Option<String>,
    topology: Option<String>,
    app: Option<String>,
    pattern: Option<String>,
    phases: Option<u32>,
    ops: Option<u64>,
    seed: Option<u64>,
    mode: Option<String>,
    watch: bool,
    shards: Option<usize>,
    faults: Option<String>,
    fault_seed: Option<u64>,
    trace_out: Option<String>,
    metrics: bool,
    attribution: Option<String>,
    json: Option<String>,
    shard_profile: bool,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    restore: Option<String>,
    speculate: Option<Speculation>,
}

/// Parse a `--shards` value: a thread count ≥ 1, or `auto` for one shard
/// per available host core.
fn parse_shards(s: &str) -> Result<usize, String> {
    if s == "auto" {
        return Ok(mermaid_network::auto_shards());
    }
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --shards `{s}` (want a count >= 1 or `auto`)")),
    }
}

/// Parse a `--speculate` value: `on` (the built-in adaptive threshold),
/// `off`, or an explicit window-width threshold in picoseconds.
/// Scheduling policy only — results are bit-identical either way.
fn parse_speculation(s: &str) -> Result<Speculation, String> {
    match s {
        "on" => Ok(Speculation::Auto),
        "off" => Ok(Speculation::Off),
        _ => match s.parse::<u64>() {
            Ok(ps) if ps >= 1 => Ok(Speculation::Threshold(pearl::Duration::from_ps(ps))),
            _ => Err(format!(
                "bad --speculate `{s}` (want `on`, `off`, or a threshold in ps >= 1)"
            )),
        },
    }
}

/// Largest accepted `--phases` value. Workload sizes beyond this are
/// almost certainly typos (every node materialises its whole trace).
pub(crate) const MAX_PHASES: u32 = 1_000_000;
/// Largest accepted `--ops` (operations per phase) value.
pub(crate) const MAX_OPS_PER_PHASE: u64 = 1_000_000_000;

/// Parse a `--phases` value: a compute+communicate phase count in
/// `1..=MAX_PHASES`. Zero would generate an empty workload that predicts
/// a meaningless zero-length run, so it is rejected with a diagnostic
/// instead of silently succeeding.
pub(crate) fn parse_phases(s: &str) -> Result<u32, String> {
    match s.parse::<u32>() {
        Ok(0) => Err(format!(
            "bad --phases `{s}` (0 phases is an empty workload — want 1..={MAX_PHASES})"
        )),
        Ok(n) if n <= MAX_PHASES => Ok(n),
        _ => Err(format!(
            "bad --phases `{s}` (want a count in 1..={MAX_PHASES})"
        )),
    }
}

/// Parse an `--ops` value: operations per phase in `1..=MAX_OPS_PER_PHASE`.
pub(crate) fn parse_ops(s: &str) -> Result<u64, String> {
    match s.parse::<u64>() {
        Ok(0) => Err(format!(
            "bad --ops `{s}` (0 ops per phase is an empty workload — want 1..={MAX_OPS_PER_PHASE})"
        )),
        Ok(n) if n <= MAX_OPS_PER_PHASE => Ok(n),
        _ => Err(format!(
            "bad --ops `{s}` (want operations per phase in 1..={MAX_OPS_PER_PHASE})"
        )),
    }
}

/// Parse a checkpoint cadence (`sim --checkpoint-every`, `campaign
/// --checkpoint`): simulated picoseconds between snapshots. Zero would
/// checkpoint at every instant; rejected.
pub(crate) fn parse_checkpoint_cadence(flag: &str, s: &str) -> Result<u64, String> {
    match s.parse::<u64>() {
        Ok(0) => Err(format!(
            "bad {flag} `{s}` (0 ps would checkpoint continuously — \
             want a cadence in simulated picoseconds >= 1)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "bad {flag} `{s}` (want a cadence in simulated picoseconds)"
        )),
    }
}

/// Canonicalise a `--faults` argument into the campaign grammar's fault
/// token (`+`-joined clauses, whitespace and comments stripped, or
/// `none`), so a `sim` run hashes its fault schedule exactly like the
/// equivalent campaign run would.
fn canonical_fault_spec(arg: Option<&str>) -> Result<String, String> {
    let Some(arg) = arg else {
        return Ok("none".to_string());
    };
    let text = if std::path::Path::new(arg).is_file() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read fault file {arg}: {e}"))?
    } else {
        arg.to_string()
    };
    let clauses: Vec<String> = text
        .split([';', '\n'])
        .map(|c| {
            c.split('#')
                .next()
                .unwrap_or("")
                .split_whitespace()
                .collect::<String>()
        })
        .filter(|c| !c.is_empty())
        .collect();
    Ok(if clauses.is_empty() {
        "none".to_string()
    } else {
        clauses.join("+")
    })
}

/// The campaign-grammar [`crate::campaign::RunConfig`] equivalent of a
/// `sim --mode task` invocation — the identity a checkpoint binds to.
/// `shards` is pinned to 1: sharding provably does not change results
/// (the bit-identity contract of DESIGN.md §11), so a checkpoint captured
/// serially restores under any `--shards` value, and serial and sharded
/// captures of the same run produce byte-identical snapshot files.
fn sim_run_config(o: &Opts) -> Result<crate::campaign::RunConfig, String> {
    Ok(crate::campaign::RunConfig {
        machine: o.machine.clone().unwrap_or_else(|| "t805".to_string()),
        topo: o.topology.clone().unwrap_or_else(|| "ring:8".to_string()),
        app: o.app.clone().unwrap_or_else(|| "scientific".to_string()),
        pattern: o.pattern.clone().unwrap_or_else(|| "ring".to_string()),
        phases: o.phases.unwrap_or(5),
        ops: o.ops.unwrap_or(5_000),
        seed: o.seed.unwrap_or(1),
        mode: "task".to_string(),
        shards: 1,
        faults: canonical_fault_spec(o.faults.as_deref())?,
        fault_seed: o.fault_seed.unwrap_or(1),
    })
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut seen = std::collections::BTreeSet::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        // Silent last-wins on repeated flags hides mistakes in scripted
        // invocations (`--seed 1 --seed 2` ran with seed 2); every flag —
        // including booleans — may be given at most once.
        if flag.starts_with("--") && !seen.insert(flag.clone()) {
            return Err(format!(
                "duplicate flag `{flag}` (each flag may be given once)"
            ));
        }
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--machine" => o.machine = Some(value("--machine")?),
            "--topology" => o.topology = Some(value("--topology")?),
            "--app" => o.app = Some(value("--app")?),
            "--pattern" => o.pattern = Some(value("--pattern")?),
            "--phases" => o.phases = Some(parse_phases(&value("--phases")?)?),
            "--ops" => o.ops = Some(parse_ops(&value("--ops")?)?),
            "--seed" => o.seed = Some(value("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--mode" => o.mode = Some(value("--mode")?),
            "--watch" => o.watch = true,
            "--shards" => o.shards = Some(parse_shards(&value("--shards")?)?),
            "--faults" => o.faults = Some(value("--faults")?),
            "--fault-seed" => {
                o.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|_| "bad --fault-seed")?,
                )
            }
            "--trace-out" => o.trace_out = Some(value("--trace-out")?),
            "--metrics" => o.metrics = true,
            "--attribution" => o.attribution = Some(value("--attribution")?),
            "--json" => o.json = Some(value("--json")?),
            "--shard-profile" => o.shard_profile = true,
            "--checkpoint-every" => {
                o.checkpoint_every = Some(parse_checkpoint_cadence(
                    "--checkpoint-every",
                    &value("--checkpoint-every")?,
                )?)
            }
            "--checkpoint-dir" => o.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--restore" => o.restore = Some(value("--restore")?),
            "--speculate" => o.speculate = Some(parse_speculation(&value("--speculate")?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

/// Parse a topology spec like `ring:8`, `mesh:4x4`, `hypercube:3`.
pub(crate) fn parse_topology(spec: &str) -> Result<Topology, String> {
    let (kind, params) = spec
        .split_once(':')
        .ok_or_else(|| format!("topology spec `{spec}` needs kind:params"))?;
    let num = |s: &str| -> Result<u32, String> {
        s.parse()
            .map_err(|_| format!("bad number `{s}` in `{spec}`"))
    };
    let topo = match kind {
        "ring" => Topology::Ring(num(params)?),
        "full" => Topology::FullyConnected(num(params)?),
        "star" => Topology::Star(num(params)?),
        "hypercube" => Topology::Hypercube { dim: num(params)? },
        "mesh" | "torus" => {
            let (w, h) = params
                .split_once('x')
                .ok_or_else(|| format!("`{spec}` needs WxH"))?;
            let (w, h) = (num(w)?, num(h)?);
            if kind == "mesh" {
                Topology::Mesh2D { w, h }
            } else {
                Topology::Torus2D { w, h }
            }
        }
        other => return Err(format!("unknown topology `{other}`")),
    };
    topo.try_validate()?;
    Ok(topo)
}

pub(crate) fn parse_machine(name: &str, topo: Topology) -> Result<MachineConfig, String> {
    Ok(match name {
        "t805" => MachineConfig::t805_multicomputer(topo),
        "ppc601" => MachineConfig::powerpc601_cluster(topo, 1),
        "paragon" => {
            let mut m = MachineConfig::paragon(2, 2);
            m.network = mermaid_network::NetworkConfig::hw_routed(topo);
            m.name = format!("Paragon XP/S-class, {}", topo.label());
            m
        }
        "test" => MachineConfig::test_machine(topo),
        other => {
            return Err(format!(
                "unknown machine `{other}` (t805|ppc601|paragon|test)"
            ))
        }
    })
}

pub(crate) fn parse_pattern(name: &str) -> Result<CommPattern, String> {
    Ok(match name {
        "none" => CommPattern::None,
        "ring" | "nn" => CommPattern::NearestNeighborRing,
        "all2all" | "alltoall" => CommPattern::AllToAll,
        "master" | "masterworker" => CommPattern::MasterWorker,
        "random" => CommPattern::RandomPermutation,
        "butterfly" => CommPattern::Butterfly,
        other => return Err(format!("unknown pattern `{other}`")),
    })
}

/// Resolve the `--faults` argument into a schedule: the value is a spec
/// string, or the path of a file containing one (the file wins when it
/// exists). Retry timing defaults are scaled to the target network.
fn parse_faults(
    arg: &str,
    seed: u64,
    network: &NetworkConfig,
) -> Result<Arc<FaultSchedule>, String> {
    let spec = if std::path::Path::new(arg).is_file() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read fault file {arg}: {e}"))?
    } else {
        arg.to_string()
    };
    let sched = FaultSchedule::parse(&spec, seed, RetryParams::default_for(network))?;
    sched.try_validate(&network.topology)?;
    Ok(Arc::new(sched))
}

/// Write a run artifact to `path`, diagnosing a missing parent directory
/// up front — the common scripted mistake — with the path *and* the cause,
/// instead of the bare OS error `std::fs::write` would surface.
fn write_output_file(path: &str, data: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() && !dir.is_dir() {
            return Err(format!(
                "cannot write {path}: output directory `{}` does not exist (create it first)",
                dir.display()
            ));
        }
    }
    std::fs::write(p, data).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Render the `--shard-profile` epilogue. The numbers are host wall-clock
/// — they vary run to run and are deliberately excluded from the
/// deterministic serial-vs-sharded output guarantees.
fn shard_profile_section(p: Option<&mermaid_network::ShardProfile>) -> String {
    match p {
        Some(p) => format!(
            "\nshard self-profile (host wall-clock; varies between runs):\n{}",
            p.render()
        ),
        None => "\nshard self-profile: none (the run fell back to the serial path)\n".to_string(),
    }
}

/// Build the stochastic workload generator shared by `simulate` and
/// `analyze` from the parsed options.
fn build_generator(o: &Opts, nodes: u32) -> Result<StochasticGenerator, String> {
    let mix = match o.app.as_deref().unwrap_or("scientific") {
        "scientific" => InstructionMix::scientific(),
        "integer" => InstructionMix::integer(),
        other => return Err(format!("unknown app mix `{other}`")),
    };
    let app = StochasticApp {
        mix,
        phases: o.phases.unwrap_or(5),
        ops_per_phase: SizeDist::Fixed(o.ops.unwrap_or(5_000)),
        pattern: parse_pattern(o.pattern.as_deref().unwrap_or("ring"))?,
        ..StochasticApp::scientific(nodes)
    };
    Ok(StochasticGenerator::new(app, o.seed.unwrap_or(1)))
}

/// Render the fault-injection epilogue of a run: headline counters plus
/// the structured unreachable-pair table when anything actually failed.
fn fault_summary(comm: &CommResult) -> String {
    let mut s = format!("\nfault injection: {}\n", comm.delivery().headline());
    if !comm.unreachable.is_empty() {
        if let Some(t) = report::degraded_table(comm) {
            s.push_str(&t.render());
        }
    }
    s
}

/// Run a task-level simulation through the checkpoint/restore entry
/// point: optionally seeded from a `--restore` snapshot, optionally
/// capturing one every `--checkpoint-every` simulated picoseconds into
/// `--checkpoint-dir` as `ckpt-<config-hash>-<time-ps>.snap` (the time
/// is zero-padded so directory listings sort in capture order). Returns
/// the result plus the number of checkpoints written.
///
/// A restored run prints exactly what the uninterrupted run prints — no
/// banner — so `diff` against a straight-through invocation is the
/// simplest possible conformance check.
fn run_task_checkpointed(
    o: &Opts,
    network: NetworkConfig,
    traces: &TraceSet,
    probe: &ProbeHandle,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
) -> Result<(crate::TaskLevelResult, usize), String> {
    let hash = sim_run_config(o)?.config_hash();
    let restored = match &o.restore {
        Some(path) => {
            let snap =
                Snapshot::read_file(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            snap.verify_config(&hash).map_err(|e| e.to_string())?;
            Some(snap)
        }
        None => None,
    };
    let written = std::sync::Mutex::new(0usize);
    let write_snap = |snap: &Snapshot| -> Result<(), SnapshotError> {
        let dir = o
            .checkpoint_dir
            .as_deref()
            .expect("--checkpoint-every is gated on --checkpoint-dir");
        let path =
            std::path::Path::new(dir).join(format!("ckpt-{hash}-{:020}.snap", snap.time.as_ps()));
        snap.write_file(&path)?;
        *written.lock().unwrap() += 1;
        Ok(())
    };
    let ck = o.checkpoint_every.map(|every| CheckpointOpts {
        every: pearl::Duration::from_ps(every),
        config_hash: hash.clone(),
        write: &write_snap,
    });
    let (comm, shard_profile) = run_checkpointed_with(
        network,
        traces,
        probe.clone(),
        shards,
        faults,
        restored.as_ref(),
        ck.as_ref(),
        o.speculate.unwrap_or_default(),
    )
    .map_err(|e| e.to_string())?;
    let r = crate::TaskLevelResult {
        predicted_time: comm.finish,
        comm,
        ops_simulated: traces.total_ops() as u64,
        shard_profile,
    };
    let n = *written.lock().unwrap();
    Ok((r, n))
}

/// Run the `campaign` subcommand: resolve the spec (inline or file, the
/// file winning when it exists — same convention as `--faults`), parse
/// the campaign-specific flags, and drive [`crate::campaign::run_campaign`].
fn run_campaign_cmd(args: &[String]) -> Result<String, String> {
    let Some(spec_arg) = args.first() else {
        return Err("campaign needs a spec (inline, or the path of a spec file)".into());
    };
    let spec_text = if std::path::Path::new(spec_arg).is_file() {
        std::fs::read_to_string(spec_arg)
            .map_err(|e| format!("cannot read campaign file {spec_arg}: {e}"))?
    } else {
        spec_arg.clone()
    };
    let spec = crate::campaign::CampaignSpec::parse(&spec_text)?;

    let mut out_dir: Option<String> = None;
    let mut jobs: Option<usize> = Some(1); // `None` = auto, resolved against the spec below
    let mut limit: Option<usize> = None;
    let mut dry_run = false;
    let mut attribution = false;
    let mut checkpoint_every_ps: Option<u64> = None;
    let mut seen = std::collections::BTreeSet::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        if flag.starts_with("--") && !seen.insert(flag.clone()) {
            return Err(format!(
                "duplicate flag `{flag}` (each flag may be given once)"
            ));
        }
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--out" => out_dir = Some(value("--out")?),
            "--jobs" => {
                let v = value("--jobs")?;
                jobs = if v == "auto" {
                    None
                } else {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => Some(n),
                        _ => return Err(format!("bad --jobs `{v}` (want a count >= 1 or `auto`)")),
                    }
                };
            }
            "--limit" => {
                let v = value("--limit")?;
                limit = Some(match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("bad --limit `{v}` (want a count >= 1)")),
                });
            }
            "--dry-run" => dry_run = true,
            "--attribution" => attribution = true,
            "--checkpoint" => {
                checkpoint_every_ps = Some(parse_checkpoint_cadence(
                    "--checkpoint",
                    &value("--checkpoint")?,
                )?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    if dry_run {
        let runs = spec.expand()?;
        let mut out = format!("campaign: {} run(s) expanded (dry run)\n", runs.len());
        for r in &runs {
            out.push_str(&format!("  {}  {}\n", r.config_hash(), r.canonical()));
        }
        return Ok(out);
    }
    let out_dir = out_dir.ok_or("campaign needs --out <dir> (or --dry-run)")?;
    // `--jobs auto` is resolved against the spec's shard axis: each run may
    // itself spawn `shards` worker threads, so the job count is capped to
    // keep jobs × shards within the host core count.
    let jobs = jobs.unwrap_or_else(|| {
        crate::sweep::auto_workers_for(spec.shards.iter().copied().max().unwrap_or(1))
    });
    let outcome = crate::campaign::run_campaign(
        &spec,
        &crate::campaign::CampaignOptions {
            out_dir: std::path::PathBuf::from(out_dir),
            jobs,
            limit,
            progress: true,
            attribution,
            checkpoint_every_ps,
        },
    )?;
    Ok(outcome.report)
}

/// Execute one CLI invocation (everything after the program name) and
/// return the text it would print on stdout.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(cmd) = args.first() else {
        return Err(
            "no subcommand (expected one of: table1, topo, machines, simulate/sim, \
                    analyze, probe, campaign)"
                .into(),
        );
    };
    match cmd.as_str() {
        "table1" => Ok(table1::render()),
        "topo" => {
            let spec = args.get(1).ok_or("topo needs a spec")?;
            let t = parse_topology(spec)?;
            let mut out = String::new();
            out.push_str(&format!("topology:  {}\n", t.label()));
            out.push_str(&format!("nodes:     {}\n", t.nodes()));
            out.push_str(&format!("links:     {}\n", t.link_count()));
            out.push_str(&format!("diameter:  {}\n", t.diameter()));
            out.push_str(&format!(
                "degree:    {}\n",
                (0..t.nodes())
                    .map(|n| t.neighbors(n).len())
                    .max()
                    .unwrap_or(0)
            ));
            Ok(out)
        }
        "machines" => Ok(
            "t805     Inmos T805 transputer multicomputer (30 MHz, SAF links)\n\
                          ppc601   Motorola PowerPC 601 nodes, two cache levels, hw-routed net\n\
                          paragon  Intel Paragon XP/S-class (i860 XP, wormhole mesh links)\n\
                          test     fast round-number test machine\n"
                .to_string(),
        ),
        "simulate" | "sim" => {
            let o = parse_opts(&args[1..])?;
            if o.json.is_some() {
                return Err(
                    "--json belongs to `analyze`; with sim use --attribution <file>".into(),
                );
            }
            let topo = parse_topology(o.topology.as_deref().unwrap_or("ring:8"))?;
            let machine = parse_machine(o.machine.as_deref().unwrap_or("t805"), topo)?;
            let nodes = topo.nodes();
            let gen = build_generator(&o, nodes)?;

            // Instrumentation: one probe handle feeds every sink the user
            // asked for. Disabled (a single branch per event site) when
            // no flag is given.
            let mode = o.mode.as_deref().unwrap_or("detailed");
            let tracing = o.trace_out.is_some() || o.metrics || o.attribution.is_some();
            if tracing && mode == "direct" {
                return Err(
                    "--trace-out/--metrics/--attribution need --mode detailed or task".into(),
                );
            }
            let shards = o.shards.unwrap_or(1);
            if shards > 1 && mode == "direct" {
                return Err("--shards needs --mode detailed or task".into());
            }
            if shards > 1 && o.watch {
                return Err(
                    "--shards cannot be combined with --watch (which runs single-threaded)".into(),
                );
            }
            if o.shard_profile && shards <= 1 {
                return Err("--shard-profile needs --shards with at least 2 workers".into());
            }
            if o.speculate.is_some() && shards <= 1 {
                return Err("--speculate needs --shards with at least 2 workers".into());
            }
            let checkpointing =
                o.checkpoint_every.is_some() || o.checkpoint_dir.is_some() || o.restore.is_some();
            if checkpointing && mode != "task" {
                return Err(
                    "--checkpoint-every/--checkpoint-dir/--restore need --mode task \
                     (snapshots cover the communication model; see DESIGN.md section 16)"
                        .into(),
                );
            }
            if checkpointing && o.watch {
                return Err(
                    "checkpoint flags cannot be combined with --watch (which runs the \
                     single-threaded observer loop)"
                        .into(),
                );
            }
            if o.checkpoint_every.is_some() != o.checkpoint_dir.is_some() {
                return Err("--checkpoint-every and --checkpoint-dir go together \
                            (a cadence needs a destination, and vice versa)"
                    .into());
            }
            if o.restore.is_some() && (o.trace_out.is_some() || o.metrics) {
                return Err(
                    "--restore cannot rebuild --trace-out/--metrics streams (they would \
                     only cover events after the checkpoint instant); --attribution is \
                     supported because its state is carried in the snapshot"
                        .into(),
                );
            }
            if o.fault_seed.is_some() && o.faults.is_none() {
                return Err("--fault-seed needs --faults".into());
            }
            let faults = match &o.faults {
                Some(arg) => {
                    if mode == "direct" {
                        return Err("--faults needs --mode detailed or task (direct execution \
                                    has no communication model to inject into)"
                            .into());
                    }
                    if o.watch {
                        return Err("--faults cannot be combined with --watch".into());
                    }
                    Some(parse_faults(
                        arg,
                        o.fault_seed.unwrap_or(1),
                        &machine.network,
                    )?)
                }
                None => None,
            };
            let probe = if tracing {
                let mut stack = ProbeStack::new();
                if o.trace_out.is_some() {
                    stack = stack.with_chrome();
                }
                if o.metrics {
                    stack = stack
                        .with_metrics()
                        .with_profiler(crate::host_frequency().as_hz() as f64);
                }
                if o.attribution.is_some() {
                    stack = stack.with_attribution();
                }
                ProbeHandle::new(stack)
            } else {
                ProbeHandle::disabled()
            };

            let mut out = format!("machine: {}\n", machine.name);
            let mut finish_ps = 0u64;
            match mode {
                "detailed" => {
                    let traces = gen.generate();
                    let meter = SlowdownMeter::start(nodes, machine.cpu.clock);
                    let r = HybridSim::new(machine)
                        .with_probe(probe.clone())
                        .with_shards(shards)
                        .with_faults(faults.clone())
                        .with_speculation(o.speculate.unwrap_or_default())
                        .run(&traces);
                    let slow = meter.finish(r.predicted_time);
                    finish_ps = r.predicted_time.as_ps();
                    out.push_str(&format!("predicted time: {}\n\n", r.predicted_time));
                    out.push_str(&report::hybrid_table(&r).render());
                    if faults.is_some() {
                        out.push_str(&fault_summary(&r.comm));
                    }
                    out.push_str(&format!(
                        "\nslowdown {:.1}×/proc, {:.0} target cycles/s\n",
                        slow.slowdown_per_processor(),
                        slow.target_cycles_per_host_second()
                    ));
                    if o.shard_profile {
                        out.push_str(&shard_profile_section(r.shard_profile.as_ref()));
                    }
                }
                "task" => {
                    let traces = gen.generate_task_level();
                    if o.watch {
                        let (r, run) = observer::observe_task_level_probed(
                            machine.network,
                            &traces,
                            500,
                            probe.clone(),
                            |s| {
                                eprintln!(
                                    "t={:>14}ps  events={:>8}  msgs={:>6}  done={}/{}",
                                    s.virtual_ps, s.events, s.messages, s.nodes_done, nodes
                                );
                            },
                        );
                        finish_ps = r.finish.as_ps();
                        out.push_str(&format!("predicted time: {}\n", r.finish));
                        out.push_str(&format!(
                            "messages over time: {}\n",
                            mermaid_stats::chart::sparkline(&run.messages, 40)
                        ));
                    } else {
                        let (r, ckpts_written) =
                            if o.restore.is_some() || o.checkpoint_every.is_some() {
                                run_task_checkpointed(
                                    &o,
                                    machine.network,
                                    &traces,
                                    &probe,
                                    shards,
                                    faults.clone(),
                                )?
                            } else {
                                let r = TaskLevelSim::new(machine.network)
                                    .with_probe(probe.clone())
                                    .with_shards(shards)
                                    .with_faults(faults.clone())
                                    .with_speculation(o.speculate.unwrap_or_default())
                                    .run(&traces);
                                (r, 0)
                            };
                        finish_ps = r.predicted_time.as_ps();
                        out.push_str(&format!("predicted time: {}\n\n", r.predicted_time));
                        out.push_str(&report::task_level_table(&r).render());
                        if faults.is_some() {
                            out.push_str(&fault_summary(&r.comm));
                        }
                        if o.shard_profile {
                            out.push_str(&shard_profile_section(r.shard_profile.as_ref()));
                        }
                        if let Some(dir) = o.checkpoint_dir.as_deref() {
                            out.push_str(&format!(
                                "checkpoints written: {ckpts_written} (ckpt-*.snap in {dir})\n"
                            ));
                        }
                    }
                }
                "direct" => {
                    let traces = gen.generate();
                    let r = DirectExecSim::new(machine).run(&traces);
                    out.push_str(&format!(
                        "predicted time: {} (direct-execution estimate; cache-blind)\n",
                        r.predicted_time
                    ));
                }
                other => return Err(format!("unknown mode `{other}`")),
            }

            if let Some(path) = &o.trace_out {
                let json = probe.chrome_trace_json().ok_or("no trace was collected")?;
                crate::probe::validate_chrome_trace(&json)
                    .map_err(|e| format!("internal error: emitted trace is invalid: {e}"))?;
                write_output_file(path, &json)?;
                out.push_str(&format!("trace written: {path}\n"));
            }
            if let Some(path) = &o.attribution {
                let report = probe
                    .attribution_report(finish_ps)
                    .ok_or("no attribution was collected")?;
                write_output_file(path, &report.to_json())?;
                out.push_str(&format!("attribution written: {path}\n"));
            }
            if o.metrics {
                let report = probe
                    .metrics_report(finish_ps)
                    .ok_or("no metrics were collected")?;
                out.push('\n');
                out.push_str(&report.render());
                if let Some(profile) = probe.host_profile() {
                    out.push('\n');
                    out.push_str(&profile.render());
                }
            }
            Ok(out)
        }
        "analyze" => {
            let o = parse_opts(&args[1..])?;
            if o.watch || o.trace_out.is_some() || o.metrics {
                return Err("analyze renders the attribution report; use `sim` for \
                            --watch/--trace-out/--metrics"
                    .into());
            }
            if o.attribution.is_some() {
                return Err("analyze always attributes; write the JSON with --json <file>".into());
            }
            let topo = parse_topology(o.topology.as_deref().unwrap_or("ring:8"))?;
            let machine = parse_machine(o.machine.as_deref().unwrap_or("t805"), topo)?;
            let gen = build_generator(&o, topo.nodes())?;
            // Analyze targets the communication network, so the fast
            // task-level mode is the default; `--mode detailed` attributes
            // the same run with the computational model in front.
            let mode = o.mode.as_deref().unwrap_or("task");
            let shards = o.shards.unwrap_or(1);
            if o.shard_profile && shards <= 1 {
                return Err("--shard-profile needs --shards with at least 2 workers".into());
            }
            if o.speculate.is_some() && shards <= 1 {
                return Err("--speculate needs --shards with at least 2 workers".into());
            }
            if o.fault_seed.is_some() && o.faults.is_none() {
                return Err("--fault-seed needs --faults".into());
            }
            let faults = match &o.faults {
                Some(arg) => Some(parse_faults(
                    arg,
                    o.fault_seed.unwrap_or(1),
                    &machine.network,
                )?),
                None => None,
            };
            let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
            let mut out = format!("machine: {}\n", machine.name);
            let (finish_ps, shard_profile) = match mode {
                "task" => {
                    let traces = gen.generate_task_level();
                    let r = TaskLevelSim::new(machine.network)
                        .with_probe(probe.clone())
                        .with_shards(shards)
                        .with_faults(faults.clone())
                        .with_speculation(o.speculate.unwrap_or_default())
                        .run(&traces);
                    out.push_str(&format!("predicted time: {}\n", r.predicted_time));
                    (r.predicted_time.as_ps(), r.shard_profile)
                }
                "detailed" => {
                    let traces = gen.generate();
                    let r = HybridSim::new(machine)
                        .with_probe(probe.clone())
                        .with_shards(shards)
                        .with_faults(faults.clone())
                        .with_speculation(o.speculate.unwrap_or_default())
                        .run(&traces);
                    out.push_str(&format!("predicted time: {}\n", r.predicted_time));
                    (r.predicted_time.as_ps(), r.shard_profile)
                }
                other => {
                    return Err(format!(
                        "analyze needs --mode detailed or task (got `{other}`)"
                    ))
                }
            };
            let report = probe
                .attribution_report(finish_ps)
                .ok_or("no attribution was collected")?;
            out.push('\n');
            out.push_str(&report.render());
            if let Some(path) = &o.json {
                write_output_file(path, &report.to_json())?;
                out.push_str(&format!("attribution written: {path}\n"));
            }
            if o.shard_profile {
                out.push_str(&shard_profile_section(shard_profile.as_ref()));
            }
            Ok(out)
        }
        "probe" => {
            let o = parse_opts(&args[1..])?;
            let topo = parse_topology(o.topology.as_deref().unwrap_or("ring:4"))?;
            let machine = parse_machine(o.machine.as_deref().unwrap_or("ppc601"), topo)?;
            let mut out = format!(
                "machine: {}\n\nmemory-latency curve (64 B stride):\n",
                machine.name
            );
            let footprints: Vec<u64> = (0..10).map(|i| (4 << 10) << i).collect(); // 4 KiB … 2 MiB
            for p in crate::memory_stride_probe(&machine, &footprints, 64) {
                out.push_str(&format!(
                    "  {:>8} KiB  {:>8.1} ns/access\n",
                    p.array_bytes / 1024,
                    p.per_access.as_nanos_f64()
                ));
            }
            out.push_str("\nping-pong (node 0 ↔ 1):\n");
            for p in crate::ping_pong(&machine, &[64, 1024, 16 * 1024, 262_144], 3) {
                out.push_str(&format!(
                    "  {:>7} B  one-way {:>12}  {:>10.2} MB/s\n",
                    p.bytes,
                    format!("{}", p.one_way),
                    p.bandwidth / 1e6
                ));
            }
            Ok(out)
        }
        "campaign" => run_campaign_cmd(&args[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn topology_specs_parse() {
        assert_eq!(parse_topology("ring:8").unwrap(), Topology::Ring(8));
        assert_eq!(
            parse_topology("mesh:4x2").unwrap(),
            Topology::Mesh2D { w: 4, h: 2 }
        );
        assert_eq!(
            parse_topology("hypercube:3").unwrap(),
            Topology::Hypercube { dim: 3 }
        );
        assert!(parse_topology("ring").is_err());
        assert!(parse_topology("blob:3").is_err());
        assert!(parse_topology("mesh:4").is_err());
    }

    #[test]
    fn invalid_topology_specs_are_errors_not_panics() {
        // Each of these used to reach `Topology::validate()`'s assertions
        // (or overflow `w*h`) and abort the process; they must now come
        // back as plain `Err`s.
        for spec in [
            "ring:1",
            "ring:0",
            "mesh:0x4",
            "mesh:4x0",
            "torus:0x4",
            "mesh:1x1",
            "hypercube:0",
            "hypercube:21",
            "full:1",
            "star:1",
            "mesh:100000x100000",
        ] {
            let err = parse_topology(spec).expect_err(&format!("`{spec}` should be rejected"));
            assert!(!err.is_empty());
        }
        // ... while the boundary cases stay valid.
        assert!(parse_topology("ring:2").is_ok());
        assert!(parse_topology("hypercube:20").is_ok());
    }

    #[test]
    fn shards_flag_parses_counts_and_auto() {
        assert_eq!(parse_shards("1").unwrap(), 1);
        assert_eq!(parse_shards("4").unwrap(), 4);
        assert!(parse_shards("auto").unwrap() >= 1);
        assert!(parse_shards("0").is_err());
        assert!(parse_shards("-2").is_err());
        assert!(parse_shards("many").is_err());
        let o = parse_opts(&s(&["--shards", "3"])).unwrap();
        assert_eq!(o.shards, Some(3));
        assert!(parse_opts(&s(&["--shards"])).is_err());
    }

    #[test]
    fn no_subcommand_error_lists_the_subcommands() {
        let err = run(&[]).unwrap_err();
        for name in [
            "table1", "topo", "machines", "simulate", "analyze", "probe", "campaign",
        ] {
            assert!(err.contains(name), "`{err}` should mention {name}");
        }
    }

    #[test]
    fn analyze_renders_the_attribution_report() {
        let out = run(&s(&[
            "analyze",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--phases",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("predicted time"), "{out}");
        assert!(out.contains("Latency decomposition"), "{out}");
        assert!(out.contains("Hottest links"), "{out}");
        assert!(out.contains("Hottest routers"), "{out}");
        assert!(out.contains("heatmap"), "{out}");
    }

    #[test]
    fn analyze_output_is_byte_identical_serial_vs_sharded() {
        let dir = std::env::temp_dir();
        let a = dir.join(format!("mermaid-attr-serial-{}.json", std::process::id()));
        let b = dir.join(format!("mermaid-attr-sharded-{}.json", std::process::id()));
        let base = s(&[
            "analyze",
            "--machine",
            "test",
            "--topology",
            "torus:2x2",
            "--phases",
            "2",
            "--pattern",
            "all2all",
        ]);
        let mut serial_args = base.clone();
        serial_args.extend(s(&["--json", a.to_str().unwrap()]));
        let mut sharded_args = base.clone();
        sharded_args.extend(s(&["--shards", "3", "--json", b.to_str().unwrap()]));
        let serial = run(&serial_args).unwrap();
        let sharded = run(&sharded_args).unwrap();
        let aj = std::fs::read_to_string(&a).unwrap();
        let bj = std::fs::read_to_string(&b).unwrap();
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        // stdout differs only in the --json path echoed at the end.
        assert_eq!(
            serial.replace(a.to_str().unwrap(), "X"),
            sharded.replace(b.to_str().unwrap(), "X")
        );
        assert_eq!(aj, bj, "attribution.json must be shard-invariant");
        assert!(aj.contains("\"schema\":\"mermaid-attribution-v1\""), "{aj}");
    }

    #[test]
    fn analyze_rejects_direct_mode_and_sim_only_flags() {
        let err = run(&s(&["analyze", "--mode", "direct"])).unwrap_err();
        assert!(err.contains("detailed or task"), "{err}");
        let err = run(&s(&["analyze", "--metrics"])).unwrap_err();
        assert!(err.contains("use `sim`"), "{err}");
        let err = run(&s(&["analyze", "--watch"])).unwrap_err();
        assert!(err.contains("use `sim`"), "{err}");
        let err = run(&s(&["analyze", "--attribution", "x.json"])).unwrap_err();
        assert!(err.contains("--json"), "{err}");
        let err = run(&s(&["sim", "--json", "x.json"])).unwrap_err();
        assert!(err.contains("--attribution"), "{err}");
    }

    #[test]
    fn sim_attribution_flag_writes_the_json_artifact() {
        let path =
            std::env::temp_dir().join(format!("mermaid-sim-attr-{}.json", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let out = run(&s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--attribution",
            &path_s,
        ]))
        .unwrap();
        assert!(out.contains("attribution written"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            json.starts_with("{\"schema\":\"mermaid-attribution-v1\""),
            "{json}"
        );
    }

    #[test]
    fn missing_output_directory_is_an_actionable_error() {
        let bogus = "/nonexistent-mermaid-dir/out.json";
        for args in [
            vec![
                "sim",
                "--mode",
                "task",
                "--phases",
                "1",
                "--trace-out",
                bogus,
            ],
            vec![
                "sim",
                "--mode",
                "task",
                "--phases",
                "1",
                "--attribution",
                bogus,
            ],
            vec!["analyze", "--phases", "1", "--json", bogus],
        ] {
            let mut full = vec!["--machine", "test", "--topology", "ring:4"];
            full.splice(0..0, [args[0]]);
            full.extend(&args[1..]);
            let err = run(&s(&full)).unwrap_err();
            assert!(err.contains(bogus), "{err}");
            assert!(err.contains("does not exist"), "{err}");
            assert!(err.contains("/nonexistent-mermaid-dir"), "{err}");
        }
    }

    #[test]
    fn shard_profile_flag_needs_a_sharded_run() {
        let err = run(&s(&["sim", "--mode", "task", "--shard-profile"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = run(&s(&["analyze", "--shard-profile"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn sharded_analyze_with_shard_profile_reports_overheads() {
        let out = run(&s(&[
            "analyze",
            "--machine",
            "test",
            "--topology",
            "torus:2x2",
            "--phases",
            "2",
            "--shards",
            "3",
            "--shard-profile",
        ]))
        .unwrap();
        assert!(out.contains("shard self-profile"), "{out}");
        assert!(out.contains("barrier wait:"), "{out}");
        assert!(out.contains("ev/window"), "{out}");
    }

    #[test]
    fn speculate_flag_needs_a_sharded_run_and_a_sane_value() {
        let err = run(&s(&["sim", "--mode", "task", "--speculate", "on"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = run(&s(&["analyze", "--speculate", "off"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = parse_opts(&s(&["--speculate", "maybe"])).unwrap_err();
        assert!(err.contains("--speculate"), "{err}");
        let err = parse_opts(&s(&["--speculate", "0"])).unwrap_err();
        assert!(err.contains("--speculate"), "{err}");
        assert!(matches!(
            parse_opts(&s(&["--speculate", "on"])).unwrap().speculate,
            Some(Speculation::Auto)
        ));
        assert!(matches!(
            parse_opts(&s(&["--speculate", "off"])).unwrap().speculate,
            Some(Speculation::Off)
        ));
        assert!(matches!(
            parse_opts(&s(&["--speculate", "50000"])).unwrap().speculate,
            Some(Speculation::Threshold(_))
        ));
    }

    #[test]
    fn speculation_policies_produce_identical_output() {
        let base = s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "torus:2x2",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--shards",
            "3",
        ]);
        let default = run(&base).unwrap();
        for policy in ["on", "off", "200000"] {
            let mut args = base.clone();
            args.extend(s(&["--speculate", policy]));
            assert_eq!(
                default,
                run(&args).unwrap(),
                "--speculate {policy} diverged"
            );
        }
    }

    #[test]
    fn campaign_dry_run_lists_the_expanded_grid() {
        let out = run(&s(&[
            "campaign",
            "topo = ring:4, mesh:2x2; pattern = ring, all2all; phases = 1; ops = 200",
            "--dry-run",
        ]))
        .unwrap();
        assert!(out.contains("4 run(s) expanded (dry run)"), "{out}");
        assert!(out.contains("campaign-v1"), "{out}");
        assert_eq!(out.lines().count(), 5, "{out}");
    }

    #[test]
    fn campaign_flag_errors_are_actionable() {
        let spec = "topo = ring:4; phases = 1; ops = 200";
        assert!(run(&s(&["campaign"])).unwrap_err().contains("spec"));
        let err = run(&s(&["campaign", spec])).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let err = run(&s(&["campaign", spec, "--out", "x", "--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = run(&s(&["campaign", spec, "--out", "x", "--limit", "junk"])).unwrap_err();
        assert!(err.contains("--limit"), "{err}");
        let err = run(&s(&["campaign", spec, "--out", "a", "--out", "b"])).unwrap_err();
        assert!(err.contains("duplicate flag"), "{err}");
        let err = run(&s(&["campaign", "topo = ring:4; frob = 1", "--dry-run"])).unwrap_err();
        assert!(err.contains("unknown campaign key"), "{err}");
    }

    #[test]
    fn campaign_runs_resume_and_report() {
        let dir = std::env::temp_dir().join(format!("mermaid-cli-campaign-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_str().unwrap().to_string();
        let spec = "topo = ring:4, mesh:2x2; pattern = ring; phases = 1; ops = 200";
        let first = run(&s(&["campaign", spec, "--out", &dir_s])).unwrap();
        assert!(
            first.contains("2 run(s) expanded, 0 already recorded, 2 executed"),
            "{first}"
        );
        assert!(first.contains("Campaign comparison"), "{first}");
        // Re-running finds everything recorded and does no new work.
        let second = run(&s(&["campaign", spec, "--out", &dir_s])).unwrap();
        assert!(
            second.contains("2 run(s) expanded, 2 already recorded, 0 executed"),
            "{second}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_jobs_auto_respects_sharded_runs() {
        // `--jobs auto` resolves against the spec's shard axis, so a
        // campaign of 2-shard runs must still execute (with a capped
        // worker pool) rather than oversubscribe the host.
        let dir = std::env::temp_dir().join(format!("mermaid-cli-jobsauto-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_str().unwrap().to_string();
        let spec = "topo = ring:4; pattern = ring; phases = 1; ops = 200; shards = 1, 2";
        let out = run(&s(&["campaign", spec, "--out", &dir_s, "--jobs", "auto"])).unwrap();
        assert!(
            out.contains("2 run(s) expanded, 0 already recorded, 2 executed"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_rejects_direct_mode_and_watch() {
        let err = run(&s(&["sim", "--mode", "direct", "--shards", "2"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = run(&s(&["sim", "--mode", "task", "--shards", "2", "--watch"])).unwrap_err();
        assert!(err.contains("--watch"), "{err}");
    }

    #[test]
    fn sharded_simulate_output_matches_serial() {
        let base = s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "torus:2x2",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
        ]);
        let serial = run(&base).unwrap();
        let mut sharded_args = base.clone();
        sharded_args.extend(s(&["--shards", "3"]));
        let sharded = run(&sharded_args).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn opts_parse_flags() {
        let o = parse_opts(&s(&["--machine", "t805", "--seed", "7", "--watch"])).unwrap();
        assert_eq!(o.machine.as_deref(), Some("t805"));
        assert_eq!(o.seed, Some(7));
        assert!(o.watch);
        assert!(parse_opts(&s(&["--bogus"])).is_err());
        assert!(parse_opts(&s(&["--seed"])).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected_not_last_wins() {
        // `--seed 1 --seed 2` used to silently run with seed 2.
        let err = parse_opts(&s(&["--seed", "1", "--seed", "2"])).unwrap_err();
        assert!(err.contains("duplicate flag `--seed`"), "{err}");
        // Booleans too: `--watch --watch` is a scripting mistake.
        let err = parse_opts(&s(&["--watch", "--watch"])).unwrap_err();
        assert!(err.contains("duplicate flag `--watch`"), "{err}");
        // Different flags still coexist.
        assert!(parse_opts(&s(&["--seed", "1", "--phases", "2"])).is_ok());
        // End to end: the CLI surfaces the diagnostic.
        let err = run(&s(&["sim", "--machine", "test", "--machine", "test"])).unwrap_err();
        assert!(err.contains("duplicate flag"), "{err}");
    }

    #[test]
    fn degenerate_phases_and_ops_are_rejected() {
        // `--phases 0` / `--ops 0` used to produce empty workloads with a
        // meaningless zero-time prediction and no diagnostic.
        let err = parse_phases("0").unwrap_err();
        assert!(err.contains("empty workload"), "{err}");
        let err = parse_ops("0").unwrap_err();
        assert!(err.contains("empty workload"), "{err}");
        // Absurd values and garbage are bounded with actionable messages.
        assert!(parse_phases("9999999999").is_err());
        assert!(parse_phases("many").is_err());
        assert!(parse_ops("99999999999999999999").is_err());
        assert!(parse_ops("-5").is_err());
        // Boundaries stay valid.
        assert_eq!(parse_phases("1").unwrap(), 1);
        assert_eq!(parse_phases(&MAX_PHASES.to_string()).unwrap(), MAX_PHASES);
        assert_eq!(parse_ops("1").unwrap(), 1);
        assert_eq!(
            parse_ops(&MAX_OPS_PER_PHASE.to_string()).unwrap(),
            MAX_OPS_PER_PHASE
        );
        // End to end through the CLI.
        let err = run(&s(&["sim", "--machine", "test", "--phases", "0"])).unwrap_err();
        assert!(err.contains("--phases"), "{err}");
        let err = run(&s(&["sim", "--machine", "test", "--ops", "0"])).unwrap_err();
        assert!(err.contains("--ops"), "{err}");
    }

    /// Base args of a valid task-mode run for the checkpoint gating tests.
    fn task_args(extra: &[&str]) -> Vec<String> {
        let mut v = s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "1",
        ]);
        v.extend(s(extra));
        v
    }

    #[test]
    fn checkpoint_cadence_rejects_zero_and_junk() {
        let err = parse_checkpoint_cadence("--checkpoint-every", "0").unwrap_err();
        assert!(err.contains("--checkpoint-every"), "{err}");
        assert!(err.contains("continuously"), "{err}");
        let err = parse_checkpoint_cadence("--checkpoint", "soon").unwrap_err();
        assert!(err.contains("--checkpoint `soon`"), "{err}");
        assert_eq!(
            parse_checkpoint_cadence("--checkpoint-every", "500000").unwrap(),
            500_000
        );
        let err = run(&task_args(&[
            "--checkpoint-every",
            "0",
            "--checkpoint-dir",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--checkpoint-every"), "{err}");
    }

    #[test]
    fn checkpoint_flags_need_task_mode_and_each_other() {
        for args in [
            vec!["sim", "--mode", "detailed", "--restore", "x.snap"],
            vec![
                "sim",
                "--mode",
                "direct",
                "--checkpoint-every",
                "1000",
                "--checkpoint-dir",
                "d",
            ],
        ] {
            let err = run(&s(&args)).unwrap_err();
            assert!(err.contains("--mode task"), "{err}");
        }
        let err = run(&task_args(&["--checkpoint-every", "1000"])).unwrap_err();
        assert!(err.contains("go together"), "{err}");
        let err = run(&task_args(&["--checkpoint-dir", "d"])).unwrap_err();
        assert!(err.contains("go together"), "{err}");
        let err = run(&task_args(&["--watch", "--restore", "x.snap"])).unwrap_err();
        assert!(err.contains("--watch"), "{err}");
    }

    #[test]
    fn restore_rejects_streaming_sinks_but_not_attribution() {
        let err = run(&task_args(&["--restore", "x.snap", "--metrics"])).unwrap_err();
        assert!(err.contains("after the checkpoint instant"), "{err}");
        let err = run(&task_args(&[
            "--restore",
            "x.snap",
            "--trace-out",
            "t.json",
        ]))
        .unwrap_err();
        assert!(err.contains("--attribution is"), "{err}");
        // --attribution passes the gate and fails later, on the missing
        // snapshot file — with the read error naming the path.
        let err = run(&task_args(&[
            "--restore",
            "/nonexistent-mermaid-dir/x.snap",
            "--attribution",
            "a.json",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot read snapshot"), "{err}");
        assert!(err.contains("/nonexistent-mermaid-dir/x.snap"), "{err}");
    }

    #[test]
    fn checkpoint_dir_errors_are_actionable() {
        let err = run(&task_args(&[
            "--checkpoint-every",
            "1000000",
            "--checkpoint-dir",
            "/nonexistent-mermaid-dir",
        ]))
        .unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        assert!(err.contains("create it first"), "{err}");
        assert!(err.contains("/nonexistent-mermaid-dir"), "{err}");
    }

    #[test]
    fn restoring_a_non_snapshot_file_is_refused() {
        let path =
            std::env::temp_dir().join(format!("mermaid-cli-junk-{}.snap", std::process::id()));
        std::fs::write(&path, "this is not a snapshot\n").unwrap();
        let err = run(&task_args(&["--restore", path.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("not a mermaid snapshot"), "{err}");
        assert!(err.contains("mermaid-snapshot-v1"), "{err}");
    }

    #[test]
    fn restoring_under_different_run_parameters_names_both_hashes() {
        // Capture a real checkpoint, then restore it with a different
        // seed: the config-hash binding must refuse, naming both hashes.
        let dir = std::env::temp_dir().join(format!("mermaid-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = run(&task_args(&[
            "--checkpoint-every",
            "200000",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("checkpoints written:"), "{out}");
        let snap = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "snap"))
            .expect("a checkpoint was written");
        let err = run(&task_args(&[
            "--seed",
            "2",
            "--restore",
            snap.to_str().unwrap(),
        ]))
        .unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.contains("snapshot field `config`"), "{err}");
        assert!(err.contains("captured under"), "{err}");
    }

    #[test]
    fn campaign_checkpoint_flag_is_validated() {
        let spec = "topo = ring:4; phases = 1; ops = 200";
        let err = run(&s(&["campaign", spec, "--out", "x", "--checkpoint", "0"])).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
        let err = run(&s(&["campaign", spec, "--out", "x", "--checkpoint"])).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
    }

    #[test]
    fn table1_subcommand_renders() {
        let out = run(&s(&["table1"])).unwrap();
        assert!(out.contains("Table 1"));
    }

    #[test]
    fn topo_subcommand_reports_shape() {
        let out = run(&s(&["topo", "torus:4x4"])).unwrap();
        assert!(out.contains("nodes:     16"));
        assert!(out.contains("diameter:  4"));
    }

    #[test]
    fn simulate_task_mode_works_end_to_end() {
        let out = run(&s(&[
            "simulate",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("predicted time"));
    }

    #[test]
    fn simulate_detailed_mode_works_end_to_end() {
        let out = run(&s(&[
            "simulate",
            "--machine",
            "test",
            "--topology",
            "ring:2",
            "--mode",
            "detailed",
            "--phases",
            "1",
            "--ops",
            "200",
        ]))
        .unwrap();
        assert!(out.contains("slowdown"));
    }

    #[test]
    fn sim_is_an_alias_for_simulate() {
        let out = run(&s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("predicted time"));
    }

    #[test]
    fn traced_run_writes_a_valid_chrome_trace_and_metrics() {
        let path = std::env::temp_dir().join("mermaid-cli-test-trace.json");
        let path_s = path.to_str().unwrap().to_string();
        let out = run(&s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--trace-out",
            &path_s,
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("trace written"), "{out}");
        assert!(out.contains("engine/deliveries"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let summary = crate::probe::validate_chrome_trace(&json).unwrap();
        assert!(summary.delivered_messages.unwrap() > 0);
    }

    #[test]
    fn tracing_direct_mode_is_an_error() {
        let err = run(&s(&["sim", "--mode", "direct", "--metrics"])).unwrap_err();
        assert!(err.contains("detailed or task"), "{err}");
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn faults_flag_is_rejected_in_direct_and_watch_modes() {
        let err = run(&s(&["sim", "--mode", "direct", "--faults", "drop:100"])).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
        let err = run(&s(&[
            "sim", "--mode", "task", "--watch", "--faults", "drop:100",
        ]))
        .unwrap_err();
        assert!(err.contains("--watch"), "{err}");
        let err = run(&s(&["sim", "--mode", "task", "--fault-seed", "7"])).unwrap_err();
        assert!(err.contains("--fault-seed needs --faults"), "{err}");
    }

    #[test]
    fn bad_fault_specs_are_errors_not_panics() {
        for spec in [
            "frob:1",        // unknown clause
            "link:0-9:1000", // node out of range on ring:4
            "link:0-2:1000", // not a link on ring:4
            "link:0-1:5:4",  // heals before it fails
            "drop:2000000",  // rate above 1.0
        ] {
            let err = run(&s(&[
                "sim",
                "--machine",
                "test",
                "--topology",
                "ring:4",
                "--mode",
                "task",
                "--phases",
                "1",
                "--faults",
                spec,
            ]))
            .expect_err(&format!("`{spec}` should be rejected"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn faulty_task_run_reports_fault_injection() {
        // A permanent cut right next to node 0 on a small ring: traffic
        // crossing it fails over or times out, and the run must report it.
        let out = run(&s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--faults",
            "link:0-1:0",
        ]))
        .unwrap();
        assert!(out.contains("fault injection:"), "{out}");
        assert!(out.contains("predicted time"), "{out}");
    }

    #[test]
    fn faulty_runs_are_identical_serial_vs_sharded() {
        let base = s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "torus:2x2",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--faults",
            "link:0-1:2000:400000; drop:20000",
            "--fault-seed",
            "9",
        ]);
        let serial = run(&base).unwrap();
        let mut sharded_args = base.clone();
        sharded_args.extend(s(&["--shards", "3"]));
        let sharded = run(&sharded_args).unwrap();
        assert_eq!(serial, sharded);
        assert!(serial.contains("fault injection:"), "{serial}");
    }

    #[test]
    fn fault_file_is_read_when_it_exists() {
        let path = std::env::temp_dir().join("mermaid-cli-test-faults.txt");
        std::fs::write(&path, "# scripted outage\nlink:0-1:1000:500000\n").unwrap();
        let out = run(&s(&[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:4",
            "--mode",
            "task",
            "--phases",
            "1",
            "--faults",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("fault injection:"), "{out}");
    }
}
