//! Hybrid architectures: shared-memory multiprocessor nodes behind the
//! message-passing network (paper, Section 4.3).
//!
//! "Hybrid architectures can be modelled by both defining multiple
//! processors on a node and using the communication model to interconnect
//! the clusters of shared memory multiprocessors in a message-passing
//! network."
//!
//! Per node, `cpus` processors share the node's cache hierarchy, bus, and
//! DRAM (full contention and coherence). Processor 0 of each node is the
//! *communication processor*: only its trace may contain communication
//! operations, and the node's task-level trace is cut from its timeline.
//! The other processors contribute pure computation — and, through the
//! shared bus, memory contention that stretches processor 0's tasks.
//!
//! Model approximation (documented): task extraction is open-loop per node,
//! so the stall a *blocking* communication imposes on processor 0 is not
//! propagated into the other processors' bus schedules. Intra-node
//! contention is modelled as if all processors free-run; the communication
//! delays are then resolved by the network model.

use mermaid_cpu::{Cpu, CpuStats};
use mermaid_memory::{MemStats, MemorySystem};
use mermaid_network::{CommResult, CommSim};
use mermaid_ops::{NodeId, Operation, Trace, TraceSet};
use pearl::{Duration, Time};

use crate::machines::MachineConfig;

/// The workload of a hybrid machine: for each node, one instruction-level
/// trace per processor. Only processor 0's trace may contain communication
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpWorkload {
    /// `per_node[n][c]` is the trace of processor `c` on node `n`.
    pub per_node: Vec<Vec<Trace>>,
}

impl SmpWorkload {
    /// Validate shape and the comm-processor restriction.
    pub fn validate(&self, nodes: u32, cpus: usize) {
        assert_eq!(self.per_node.len(), nodes as usize, "node count mismatch");
        for (n, node) in self.per_node.iter().enumerate() {
            assert_eq!(
                node.len(),
                cpus,
                "node {n} has {} traces, machine has {cpus} CPUs",
                node.len()
            );
            for (c, trace) in node.iter().enumerate().skip(1) {
                assert!(
                    trace.iter().all(|o| !o.is_global_event()),
                    "node {n} CPU {c}: only processor 0 may communicate"
                );
            }
        }
    }

    /// Total operations across all nodes and processors.
    pub fn total_ops(&self) -> usize {
        self.per_node
            .iter()
            .flat_map(|n| n.iter().map(Trace::len))
            .sum()
    }
}

/// Per-node statistics of a hybrid run.
#[derive(Debug)]
pub struct SmpNodeStats {
    /// The node.
    pub node: NodeId,
    /// Per-processor CPU statistics.
    pub cpu: Vec<CpuStats>,
    /// The node's shared memory-system statistics.
    pub mem: MemStats,
    /// Task time extracted from processor 0.
    pub compute_total: Duration,
    /// Finish time of the slowest processor's computational phase.
    pub compute_finish: Time,
}

/// Result of a hybrid (SMP-nodes) simulation.
#[derive(Debug)]
pub struct SmpHybridResult {
    /// Predicted execution time (communication model's finish, lower-
    /// bounded by the slowest node's pure computation).
    pub predicted_time: Time,
    /// Per-node computational statistics.
    pub nodes: Vec<SmpNodeStats>,
    /// The task-level traces cut from each node's processor 0.
    pub task_traces: TraceSet,
    /// Communication-model results.
    pub comm: CommResult,
}

/// The hybrid-architecture simulator.
pub struct SmpHybridSim {
    machine: MachineConfig,
}

impl SmpHybridSim {
    /// Create a simulator for a machine whose nodes have
    /// `machine.node_mem.cpus` processors.
    pub fn new(machine: MachineConfig) -> Self {
        machine.validate();
        SmpHybridSim { machine }
    }

    /// Run the hybrid simulation.
    pub fn run(&self, workload: &SmpWorkload) -> SmpHybridResult {
        let nodes = self.machine.nodes();
        let cpus = self.machine.node_mem.cpus;
        workload.validate(nodes, cpus);

        let mut task_traces = Vec::with_capacity(nodes as usize);
        let mut node_stats = Vec::with_capacity(nodes as usize);
        for (n, traces) in workload.per_node.iter().enumerate() {
            let (task, stats) = self.extract_node(n as NodeId, traces);
            task_traces.push(task);
            node_stats.push(stats);
        }
        let task_traces = TraceSet::from_traces(task_traces);
        let comm = CommSim::new(self.machine.network, &task_traces).run();
        // A node's non-communicating processors may outlast processor 0's
        // trace; the machine is done when both the network and every
        // processor are.
        let compute_floor = node_stats
            .iter()
            .map(|s| s.compute_finish)
            .fold(Time::ZERO, Time::max);
        SmpHybridResult {
            predicted_time: comm.finish.max(compute_floor),
            nodes: node_stats,
            task_traces,
            comm,
        }
    }

    /// Run one node's processors to completion on a shared memory system,
    /// cutting processor 0's timeline into tasks at its global events.
    fn extract_node(&self, node: NodeId, traces: &[Trace]) -> (Trace, SmpNodeStats) {
        let cpus = traces.len();
        let mut mem = MemorySystem::new(self.machine.node_mem.clone());
        let mut cpu: Vec<Cpu> = (0..cpus).map(|i| Cpu::new(self.machine.cpu, i)).collect();
        let mut cursor = vec![0usize; cpus];
        let mut task = Trace::new(node);
        let mut run_start = Time::ZERO;
        let mut compute_total = Duration::ZERO;
        loop {
            let next = (0..cpus)
                .filter(|&i| cursor[i] < traces[i].len())
                .min_by_key(|&i| (cpu[i].now(), i));
            let Some(i) = next else { break };
            let op = traces[i].ops[cursor[i]];
            cursor[i] += 1;
            if op.is_global_event() {
                debug_assert_eq!(i, 0, "validate() enforced comm on CPU 0 only");
                let elapsed = cpu[0].now().since(run_start);
                if !elapsed.is_zero() {
                    task.push(Operation::Compute {
                        ps: elapsed.as_ps(),
                    });
                    compute_total += elapsed;
                }
                task.push(op);
                run_start = cpu[0].now();
            } else if let Operation::Compute { ps } = op {
                // Pre-collapsed computation is allowed on any processor.
                let d = Duration::from_ps(ps);
                let t = cpu[i].now() + d;
                cpu[i].advance_to(t);
            } else {
                cpu[i].execute(op, &mut mem);
            }
        }
        let tail = cpu[0].now().since(run_start);
        if !tail.is_zero() {
            task.push(Operation::Compute { ps: tail.as_ps() });
            compute_total += tail;
        }
        let compute_finish = cpu.iter().map(Cpu::now).fold(Time::ZERO, Time::max);
        let stats = SmpNodeStats {
            node,
            cpu: cpu.iter().map(|c| c.stats().clone()).collect(),
            mem: mem.stats(),
            compute_total,
            compute_finish,
        };
        (task, stats)
    }
}

/// Build a hybrid workload from a generator function: `f(node, cpu)` yields
/// each processor's trace.
pub fn build_workload(
    nodes: u32,
    cpus: usize,
    mut f: impl FnMut(NodeId, usize) -> Trace,
) -> SmpWorkload {
    SmpWorkload {
        per_node: (0..nodes)
            .map(|n| {
                (0..cpus)
                    .map(|c| {
                        let mut t = f(n, c);
                        t.node = n;
                        t
                    })
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_network::Topology;
    use mermaid_ops::{ArithOp, DataType};

    fn compute_ops(n: usize, seed: u64) -> Vec<Operation> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(seed.wrapping_add(7919));
                if x.is_multiple_of(3) {
                    Operation::Load {
                        ty: DataType::F64,
                        addr: 0x1000 + (x % 4096),
                    }
                } else {
                    Operation::Arith {
                        op: ArithOp::Add,
                        ty: DataType::F64,
                    }
                }
            })
            .collect()
    }

    fn ring_workload(nodes: u32, cpus: usize, ops: usize) -> SmpWorkload {
        build_workload(nodes, cpus, |node, cpu| {
            let mut t = Trace::from_ops(node, compute_ops(ops, (node as u64) << 8 | cpu as u64));
            if cpu == 0 {
                t.push(Operation::ASend {
                    bytes: 1024,
                    dst: (node + 1) % nodes,
                });
                t.push(Operation::Recv {
                    src: (node + nodes - 1) % nodes,
                });
            }
            t
        })
    }

    fn machine(nodes: u32, cpus: usize) -> MachineConfig {
        let mut m = MachineConfig::test_machine(Topology::Ring(nodes));
        m.node_mem.cpus = cpus;
        m
    }

    #[test]
    fn hybrid_cluster_runs_end_to_end() {
        let m = machine(4, 2);
        let w = ring_workload(4, 2, 500);
        let r = SmpHybridSim::new(m).run(&w);
        assert!(r.comm.all_done);
        assert!(r.predicted_time > Time::ZERO);
        assert_eq!(r.nodes.len(), 4);
        assert_eq!(r.nodes[0].cpu.len(), 2);
        // Both CPUs did work.
        assert!(r.nodes[0].cpu[1].ops.total > 0);
    }

    #[test]
    fn second_processor_contends_on_the_node_bus() {
        // Same node-0 workload; adding a busy second CPU must stretch the
        // communication processor's tasks (bus contention).
        let w1 = build_workload(2, 1, |node, _| {
            let mut t = Trace::from_ops(node, compute_ops(2_000, node as u64));
            if node == 0 {
                t.push(Operation::ASend { bytes: 64, dst: 1 });
            } else {
                t.push(Operation::Recv { src: 0 });
            }
            t
        });
        let w2 = build_workload(2, 2, |node, cpu| {
            if cpu == 0 {
                let mut t = Trace::from_ops(node, compute_ops(2_000, node as u64));
                if node == 0 {
                    t.push(Operation::ASend { bytes: 64, dst: 1 });
                } else {
                    t.push(Operation::Recv { src: 0 });
                }
                t
            } else {
                // A memory-hammering sibling.
                Trace::from_ops(
                    node,
                    (0..4_000u64)
                        .map(|i| Operation::Load {
                            ty: DataType::F64,
                            addr: (1 << 20) | ((i * 64) % (1 << 18)),
                        })
                        .collect(),
                )
            }
        });
        let r1 = SmpHybridSim::new(machine(2, 1)).run(&w1);
        let r2 = SmpHybridSim::new(machine(2, 2)).run(&w2);
        assert!(
            r2.nodes[0].compute_total > r1.nodes[0].compute_total,
            "contention must stretch CPU 0's tasks: {} vs {}",
            r2.nodes[0].compute_total,
            r1.nodes[0].compute_total
        );
    }

    #[test]
    fn single_cpu_smp_matches_plain_hybrid() {
        // With one CPU per node the SMP path must agree with HybridSim.
        let w = ring_workload(3, 1, 800);
        let m = machine(3, 1);
        let smp = SmpHybridSim::new(m.clone()).run(&w);
        let flat =
            TraceSet::from_traces(w.per_node.iter().map(|n| n[0].clone()).collect::<Vec<_>>());
        let hybrid = crate::hybrid::HybridSim::new(m).run(&flat);
        assert_eq!(smp.predicted_time, hybrid.predicted_time);
        assert_eq!(smp.task_traces, hybrid.task_traces);
    }

    #[test]
    #[should_panic(expected = "only processor 0 may communicate")]
    fn non_zero_cpus_may_not_communicate() {
        let w = build_workload(2, 2, |node, cpu| {
            let mut t = Trace::new(node);
            if cpu == 1 {
                t.push(Operation::Recv { src: 0 });
            }
            t
        });
        SmpHybridSim::new(machine(2, 2)).run(&w);
    }

    #[test]
    fn compute_floor_covers_long_running_siblings() {
        // CPU 1 computes far past CPU 0's last communication; the predicted
        // time must cover it.
        let w = build_workload(2, 2, |node, cpu| {
            if cpu == 0 {
                let mut t = Trace::new(node);
                if node == 0 {
                    t.push(Operation::ASend { bytes: 8, dst: 1 });
                } else {
                    t.push(Operation::Recv { src: 0 });
                }
                t
            } else {
                Trace::from_ops(node, compute_ops(50_000, 3))
            }
        });
        let r = SmpHybridSim::new(machine(2, 2)).run(&w);
        assert!(r.predicted_time >= r.nodes[0].compute_finish);
        assert!(r.nodes[0].compute_finish > r.comm.finish.min(r.nodes[0].compute_finish));
    }
}
