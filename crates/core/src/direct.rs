//! The direct-execution baseline (experiment E4).
//!
//! Section 2 of the paper describes the *direct execution* technique used
//! by most contemporary simulators (Tango, Proteus, WWT): local
//! instructions run natively with their execution time **statically
//! estimated at compile time**, and only non-local (global) operations are
//! actually simulated. The paper rejects it because static costing cannot
//! model architecture features that affect local instructions — caches in
//! particular — "the performance evaluation of instruction or private data
//! caches can only be marginally performed by means of direct execution".
//!
//! This module implements that baseline over the same traces so the
//! trade-off is measurable: local operations are folded into `compute`
//! tasks using fixed per-class cycle costs (no cache, bus, or DRAM model),
//! then only the communication is simulated. It is much faster than the
//! hybrid mode — and blind to the memory hierarchy, which the bench
//! harness demonstrates.

use mermaid_cpu::CpuParams;
use mermaid_network::{CommResult, CommSim};
use mermaid_ops::{Operation, Trace, TraceSet};
use pearl::{Duration, Time};

use crate::machines::MachineConfig;

/// Static per-operation costs used by the direct-execution estimator.
///
/// The estimator charges every memory access a *fixed* cost — it has no
/// cache model, so it must assume some average (here: the L1 hit cost, the
/// optimistic choice contemporary direct-execution systems made).
#[derive(Debug, Clone, Copy)]
pub struct DirectExecStaticCosts {
    /// CPU parameters (per-class cycle costs and the clock).
    pub cpu: CpuParams,
    /// Fixed charge for any load/store (no cache model).
    pub mem_access: Duration,
    /// Fixed charge for an instruction fetch.
    pub ifetch: Duration,
}

impl DirectExecStaticCosts {
    /// Derive the static costs a direct-execution port of `machine` would
    /// plausibly use: memory accesses cost one L1 hit.
    pub fn from_machine(machine: &MachineConfig) -> Self {
        DirectExecStaticCosts {
            cpu: machine.cpu,
            mem_access: machine.node_mem.l1d.hit_latency,
            ifetch: machine.node_mem.l1i.hit_latency,
        }
    }

    /// The statically-estimated cost of one computational operation.
    pub fn cost(&self, op: Operation) -> Duration {
        let cycles = |n: u64| self.cpu.clock.cycles(n);
        match op {
            Operation::Load { .. } => cycles(self.cpu.load_cycles) + self.mem_access,
            Operation::Store { .. } => cycles(self.cpu.store_cycles) + self.mem_access,
            Operation::LoadConst { ty } => cycles(self.cpu.const_load_cycles(ty)),
            Operation::Arith { op, ty } => cycles(self.cpu.arith_cycles(op, ty)),
            Operation::IFetch { .. } => self.ifetch,
            Operation::Branch { .. } => cycles(self.cpu.branch_cycles),
            Operation::Call { .. } => cycles(self.cpu.call_cycles),
            Operation::Ret { .. } => cycles(self.cpu.ret_cycles),
            _ => Duration::ZERO,
        }
    }
}

/// Result of a direct-execution-style simulation.
#[derive(Debug)]
pub struct DirectExecResult {
    /// Predicted execution time.
    pub predicted_time: Time,
    /// Communication-model results.
    pub comm: CommResult,
    /// Operations processed (all of them — but local ones only summed).
    pub ops_processed: u64,
}

/// The direct-execution baseline simulator.
pub struct DirectExecSim {
    machine: MachineConfig,
    costs: DirectExecStaticCosts,
}

impl DirectExecSim {
    /// Build the baseline for `machine` with costs derived from it.
    pub fn new(machine: MachineConfig) -> Self {
        machine.validate();
        let costs = DirectExecStaticCosts::from_machine(&machine);
        DirectExecSim { machine, costs }
    }

    /// Override the static costs.
    pub fn with_costs(mut self, costs: DirectExecStaticCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Statically fold one node's local operations into compute tasks.
    pub fn fold_trace(&self, trace: &Trace) -> Trace {
        let mut out = Trace::new(trace.node);
        let mut acc = Duration::ZERO;
        for &op in trace.iter() {
            if op.is_global_event() {
                if !acc.is_zero() {
                    out.push(Operation::Compute { ps: acc.as_ps() });
                    acc = Duration::ZERO;
                }
                out.push(op);
            } else if let Operation::Compute { ps } = op {
                acc += Duration::from_ps(ps);
            } else {
                acc += self.costs.cost(op);
            }
        }
        if !acc.is_zero() {
            out.push(Operation::Compute { ps: acc.as_ps() });
        }
        out
    }

    /// Run the baseline over instruction-level traces.
    pub fn run(&self, traces: &TraceSet) -> DirectExecResult {
        let folded = TraceSet::from_traces(traces.iter().map(|t| self.fold_trace(t)).collect());
        let comm = CommSim::new(self.machine.network, &folded).run();
        DirectExecResult {
            predicted_time: comm.finish,
            comm,
            ops_processed: traces.total_ops() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridSim;
    use mermaid_network::Topology;
    use mermaid_ops::{ArithOp, DataType};
    use mermaid_tracegen::{CommPattern, SizeDist, StochasticApp, StochasticGenerator};

    fn machine(n: u32) -> MachineConfig {
        MachineConfig::test_machine(Topology::Ring(n))
    }

    fn traces(n: u32) -> TraceSet {
        let app = StochasticApp {
            phases: 3,
            ops_per_phase: SizeDist::Fixed(400),
            pattern: CommPattern::NearestNeighborRing,
            ..StochasticApp::scientific(n)
        };
        StochasticGenerator::new(app, 21).generate()
    }

    #[test]
    fn folding_preserves_global_events() {
        let ts = traces(2);
        let sim = DirectExecSim::new(machine(2));
        let folded = sim.fold_trace(ts.trace(0));
        let orig_comm = ts.trace(0).stats().comm_ops();
        assert_eq!(folded.stats().comm_ops(), orig_comm);
        assert!(folded.iter().all(|o| !o.is_computational()));
    }

    #[test]
    fn baseline_runs_and_completes() {
        let ts = traces(4);
        let r = DirectExecSim::new(machine(4)).run(&ts);
        assert!(r.comm.all_done);
        assert!(r.predicted_time > Time::ZERO);
    }

    #[test]
    fn baseline_underestimates_memory_bound_work() {
        // A trace hammering random memory (cache-hostile): the hybrid model
        // sees misses; the static estimator charges L1 hits for everything
        // and must predict a shorter time.
        let mut ts = TraceSet::new(2);
        for node in 0..2u32 {
            for i in 0..2000u64 {
                ts.trace_mut(node).push(Operation::Load {
                    ty: DataType::F64,
                    addr: (i * 7919) % (1 << 22), // stride defeats the 4 KiB cache
                });
            }
            ts.trace_mut(node).push(Operation::ASend {
                bytes: 8,
                dst: (node + 1) % 2,
            });
            ts.trace_mut(node).push(Operation::Recv {
                src: (node + 1) % 2,
            });
        }
        let m = machine(2);
        let hybrid = HybridSim::new(m.clone()).run(&ts);
        let direct = DirectExecSim::new(m).run(&ts);
        assert!(
            direct.predicted_time < hybrid.predicted_time,
            "direct {} should be optimistic vs hybrid {}",
            direct.predicted_time,
            hybrid.predicted_time
        );
        // And substantially so (the whole point of the comparison): at
        // least 2× here.
        assert!(direct.predicted_time.as_ps() * 2 < hybrid.predicted_time.as_ps());
    }

    #[test]
    fn baseline_agrees_on_pure_register_work() {
        // Register-only arithmetic has no memory behaviour to mispredict:
        // both models should agree exactly.
        let mut ts = TraceSet::new(2);
        for node in 0..2u32 {
            for _ in 0..500 {
                ts.trace_mut(node).push(Operation::Arith {
                    op: ArithOp::Add,
                    ty: DataType::I32,
                });
            }
            ts.trace_mut(node).push(Operation::ASend {
                bytes: 8,
                dst: (node + 1) % 2,
            });
            ts.trace_mut(node).push(Operation::Recv {
                src: (node + 1) % 2,
            });
        }
        let m = machine(2);
        let hybrid = HybridSim::new(m.clone()).run(&ts);
        let direct = DirectExecSim::new(m).run(&ts);
        assert_eq!(hybrid.predicted_time, direct.predicted_time);
    }

    #[test]
    fn static_costs_match_cpu_parameters() {
        let m = machine(2);
        let c = DirectExecStaticCosts::from_machine(&m);
        // uniform_test CPU: 1 cycle at 100 MHz = 10 ns.
        assert_eq!(
            c.cost(Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::I32
            }),
            Duration::from_ns(10)
        );
        // Load: issue (10 ns) + assumed L1 hit (10 ns).
        assert_eq!(
            c.cost(Operation::Load {
                ty: DataType::I32,
                addr: 0
            }),
            Duration::from_ns(20)
        );
        assert_eq!(c.cost(Operation::Compute { ps: 5 }), Duration::ZERO);
    }
}
