//! The campaign runner: thousands of resumable scenarios per invocation.
//!
//! The paper's whole point is the *workbench* — rapid exploration of large
//! (topology × workload × fault) design spaces, not one run at a time. A
//! [`CampaignSpec`] declaratively describes a grid (or a seeded random
//! sample of one) over topology shape/size, machine, communication
//! pattern, phase/ops counts, trace seeds, fault schedules, and shard
//! counts. The spec expands into a deterministic run list; runs fan out
//! over [`crate::sweep::parallel_sweep_streaming`] and append one
//! self-contained JSONL record each — config, predicted time,
//! [`DeliveryStats`], key counters, and latency tail percentiles — as they
//! finish. Records are keyed by a stable config hash, so a restarted
//! campaign re-expands the spec, diffs it against the JSONL, and runs only
//! the gap (DESIGN.md §13).
//!
//! ## Spec grammar
//!
//! Clauses are separated by `;` or newlines and `#` starts a comment —
//! the same conventions as the `--faults` spec grammar. Each clause is
//! `key = value, value, …`; list values are the grid's alternatives:
//!
//! ```text
//! topo       = ring:8, torus:4x4, hypercube:3    # required, ≥1
//! machine    = test                              # default: test
//! app        = scientific                        # default: scientific
//! pattern    = ring, all2all                     # default: ring
//! phases     = 2, 4                              # default: 5
//! ops        = 2000                              # default: 5000
//! seed       = 1, 2, 3                           # default: 1
//! mode       = task                              # default: task (or detailed)
//! shards     = 1                                 # default: 1 (per-run threads)
//! faults     = none, link:0-1:1000:5000+drop:500 # default: none ('+' joins clauses)
//! fault-seed = 1                                 # default: 1
//! sample     = 100 @ 7                           # optional: N runs, shuffle seed
//! ```
//!
//! A fault alternative is a whole `--faults` spec with `+` in place of the
//! clause separator (which is taken by the campaign grammar). `sample`
//! replaces the full cartesian product by a seeded random subset —
//! deterministic, and stable under resume because selection happens on the
//! expanded grid before any run starts.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mermaid_network::{run_checkpointed, CheckpointOpts, FaultSchedule, RetryParams, Snapshot};
use mermaid_stats::csv::csv_line;
use mermaid_stats::DeliveryStats;
use pearl::{Duration, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cli::{parse_machine, parse_ops, parse_pattern, parse_phases, parse_topology};
use crate::prelude::*;
use crate::{report, sweep, HybridSim};

/// Hard ceiling on the expanded run-list size; bigger grids must use
/// `sample = N @ SEED`.
pub const MAX_RUNS: usize = 1_000_000;

/// The per-run JSONL stream inside the campaign output directory.
pub const RUNS_FILE: &str = "runs.jsonl";
/// The RFC-4180 CSV view regenerated after every campaign invocation.
pub const CSV_FILE: &str = "summary.csv";

/// One fully-materialised run configuration — every campaign dimension
/// pinned to a concrete value. This is the unit the config hash covers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Machine name (`test`, `t805`, `ppc601`, `paragon`).
    pub machine: String,
    /// Topology spec (`ring:8`, `mesh:4x4`, …).
    pub topo: String,
    /// Instruction mix (`scientific` or `integer`; detailed mode only).
    pub app: String,
    /// Communication pattern token, as written in the spec.
    pub pattern: String,
    /// Compute+communicate phases.
    pub phases: u32,
    /// Operations per phase.
    pub ops: u64,
    /// Trace-generator seed.
    pub seed: u64,
    /// Simulation mode (`task` or `detailed`).
    pub mode: String,
    /// Communication-model worker threads for this run.
    pub shards: usize,
    /// Fault spec with `+` joining clauses, or `none`.
    pub faults: String,
    /// Fault-schedule seed (per-packet loss/corruption draws).
    pub fault_seed: u64,
}

impl RunConfig {
    /// The canonical one-line rendering of this configuration. The config
    /// hash is computed over exactly this string, so its format is a
    /// stability contract: the `campaign-v1` prefix is bumped whenever a
    /// field is added, removed, or re-ordered (DESIGN.md §13) — old
    /// records then simply stop matching instead of silently colliding.
    pub fn canonical(&self) -> String {
        format!(
            "campaign-v1 machine={} topo={} app={} pattern={} phases={} ops={} seed={} \
             mode={} shards={} faults={} fault-seed={}",
            self.machine,
            self.topo,
            self.app,
            self.pattern,
            self.phases,
            self.ops,
            self.seed,
            self.mode,
            self.shards,
            self.faults,
            self.fault_seed
        )
    }

    /// Stable 64-bit config hash (FNV-1a over [`RunConfig::canonical`]),
    /// rendered as 16 lowercase hex digits.
    pub fn config_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// The workload half of the configuration — what is being run, as
    /// opposed to what it runs on. Records sharing a workload key are
    /// ranked against each other in the comparison table.
    pub fn workload_key(&self) -> String {
        format!(
            "{} {} phases={} ops={} seed={}",
            self.app, self.pattern, self.phases, self.ops, self.seed
        )
    }

    /// The architecture half: machine, topology, mode, shards, faults.
    pub fn architecture_label(&self) -> String {
        let mut s = format!("{} {}", self.machine, self.topo);
        if self.mode != "task" {
            s.push_str(&format!(" {}", self.mode));
        }
        if self.faults != "none" {
            s.push_str(&format!(" faults={}", self.faults));
        }
        s
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, and stable across platforms
/// and releases (the hash lands in persisted campaign logs).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-run bottleneck-attribution headline, recorded when the campaign
/// runs with attribution enabled: which latency component dominated the
/// delivered messages and how hot the busiest link ran. Deterministic and
/// shard-invariant, like the full `attribution.json` it is distilled from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrHeadline {
    /// Name of the dominant latency component (`queue`, `wire`, …).
    pub dominant: String,
    /// The dominant component's share of total summed latency, in ppm.
    pub dominant_share_ppm: u64,
    /// Utilization of the busiest link over the run horizon, in ppm.
    pub max_link_util_ppm: u64,
}

/// One self-contained campaign record: everything a later analysis pass
/// needs without re-running the simulation. Serialised as one JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecord {
    /// Stable key of [`RunConfig`] (see [`RunConfig::config_hash`]).
    pub config_hash: String,
    /// The full configuration, embedded so each line stands alone.
    pub config: RunConfig,
    /// Predicted execution time, picoseconds.
    pub predicted_ps: u64,
    /// Whether every node completed its trace.
    pub all_done: bool,
    /// Simulation events processed.
    pub events: u64,
    /// Operations simulated.
    pub ops_simulated: u64,
    /// Messages delivered end-to-end.
    pub msgs_delivered: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Message-latency percentiles from the run's log₂ histogram (ps).
    pub latency_p50_ps: u64,
    /// 90th percentile message latency (ps).
    pub latency_p90_ps: u64,
    /// 99th percentile message latency (ps).
    pub latency_p99_ps: u64,
    /// Largest observed message latency (ps).
    pub latency_max_ps: u64,
    /// Delivery accounting (all-zero outside fault mode).
    pub delivery: DeliveryStats,
    /// Attribution headline (`None` unless the campaign ran with
    /// attribution enabled).
    pub attribution: Option<AttrHeadline>,
}

impl CampaignRecord {
    /// The CSV header matching [`CampaignRecord::csv_row`].
    pub fn csv_header() -> String {
        csv_line(&[
            "config_hash",
            "machine",
            "topology",
            "app",
            "pattern",
            "phases",
            "ops",
            "seed",
            "mode",
            "shards",
            "faults",
            "fault_seed",
            "predicted_ps",
            "predicted",
            "all_done",
            "events",
            "ops_simulated",
            "msgs_delivered",
            "bytes_sent",
            "latency_p50_ps",
            "latency_p90_ps",
            "latency_p99_ps",
            "latency_max_ps",
            "dropped_packets",
            "retries",
            "msgs_failed",
            "recv_timeouts",
            "attr_dominant",
            "attr_dominant_share_ppm",
            "attr_max_link_util_ppm",
        ])
    }

    /// This record as one RFC-4180 CSV row.
    pub fn csv_row(&self) -> String {
        let c = &self.config;
        csv_line(&[
            self.config_hash.clone(),
            c.machine.clone(),
            c.topo.clone(),
            c.app.clone(),
            c.pattern.clone(),
            c.phases.to_string(),
            c.ops.to_string(),
            c.seed.to_string(),
            c.mode.clone(),
            c.shards.to_string(),
            c.faults.clone(),
            c.fault_seed.to_string(),
            self.predicted_ps.to_string(),
            format!("{}", Time::from_ps(self.predicted_ps)),
            self.all_done.to_string(),
            self.events.to_string(),
            self.ops_simulated.to_string(),
            self.msgs_delivered.to_string(),
            self.bytes_sent.to_string(),
            self.latency_p50_ps.to_string(),
            self.latency_p90_ps.to_string(),
            self.latency_p99_ps.to_string(),
            self.latency_max_ps.to_string(),
            self.delivery.dropped_packets.to_string(),
            self.delivery.retries.to_string(),
            self.delivery.failed.to_string(),
            self.delivery.recv_timeouts.to_string(),
            self.attribution
                .as_ref()
                .map_or(String::new(), |a| a.dominant.clone()),
            self.attribution
                .as_ref()
                .map_or(String::new(), |a| a.dominant_share_ppm.to_string()),
            self.attribution
                .as_ref()
                .map_or(String::new(), |a| a.max_link_util_ppm.to_string()),
        ])
    }
}

/// A parsed campaign spec: each field holds the grid's alternatives for
/// one dimension, deduplicated but otherwise in spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Topology specs (required, ≥1).
    pub topos: Vec<String>,
    /// Machine names.
    pub machines: Vec<String>,
    /// Instruction mixes.
    pub apps: Vec<String>,
    /// Communication patterns.
    pub patterns: Vec<String>,
    /// Phase counts.
    pub phases: Vec<u32>,
    /// Ops-per-phase values.
    pub ops: Vec<u64>,
    /// Trace seeds.
    pub seeds: Vec<u64>,
    /// Modes (`task`/`detailed`).
    pub modes: Vec<String>,
    /// Per-run shard counts.
    pub shards: Vec<usize>,
    /// Fault specs (`none` or `+`-joined clause lists).
    pub faults: Vec<String>,
    /// Fault seeds.
    pub fault_seeds: Vec<u64>,
    /// Optional seeded random sample: `(size, shuffle_seed)`.
    pub sample: Option<(usize, u64)>,
}

impl CampaignSpec {
    /// Parse a campaign spec (see the module docs for the grammar). Every
    /// value is validated here — unknown keys, duplicate keys, malformed
    /// values, and empty lists are all hard errors with the offending
    /// clause named, mirroring the `--faults` parser's conventions.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut topos = Vec::new();
        let mut machines = Vec::new();
        let mut apps = Vec::new();
        let mut patterns = Vec::new();
        let mut phases = Vec::new();
        let mut ops = Vec::new();
        let mut seeds = Vec::new();
        let mut modes = Vec::new();
        let mut shards = Vec::new();
        let mut faults = Vec::new();
        let mut fault_seeds = Vec::new();
        let mut sample = None;
        let mut seen = std::collections::BTreeSet::new();

        for raw in spec.split([';', '\n']) {
            let clause = raw.split('#').next().unwrap_or("").trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("campaign clause `{clause}` needs key = value"))?;
            let key = key.trim();
            let value = value.trim();
            if !seen.insert(key.to_string()) {
                return Err(format!(
                    "duplicate campaign key `{key}` (each key may be given once; \
                     use a comma-separated list for alternatives)"
                ));
            }
            let list = || -> Result<Vec<String>, String> {
                let items: Vec<String> = value
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                if items.is_empty() {
                    return Err(format!("campaign key `{key}` has an empty value list"));
                }
                Ok(dedup_preserving_order(items))
            };
            match key {
                "topo" | "topology" => {
                    topos = list()?;
                    for t in &topos {
                        parse_topology(t).map_err(|e| format!("campaign topo `{t}`: {e}"))?;
                    }
                }
                "machine" => {
                    machines = list()?;
                    for m in &machines {
                        // Validate the name against a throwaway topology.
                        parse_machine(m, mermaid_network::Topology::Ring(2))
                            .map_err(|e| format!("campaign machine `{m}`: {e}"))?;
                    }
                }
                "app" => {
                    apps = list()?;
                    for a in &apps {
                        if a != "scientific" && a != "integer" {
                            return Err(format!("campaign app `{a}` (want scientific or integer)"));
                        }
                    }
                }
                "pattern" => {
                    patterns = list()?;
                    for p in &patterns {
                        parse_pattern(p).map_err(|e| format!("campaign pattern `{p}`: {e}"))?;
                    }
                }
                "phases" => {
                    phases = list()?
                        .iter()
                        .map(|v| parse_phases(v).map_err(|e| format!("campaign phases: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "ops" => {
                    ops = list()?
                        .iter()
                        .map(|v| parse_ops(v).map_err(|e| format!("campaign ops: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "seed" => seeds = parse_u64_list(&list()?, "seed")?,
                "mode" => {
                    modes = list()?;
                    for m in &modes {
                        if m != "task" && m != "detailed" {
                            return Err(format!(
                                "campaign mode `{m}` (want task or detailed; direct \
                                 execution records no communication statistics)"
                            ));
                        }
                    }
                }
                "shards" => {
                    shards = list()?
                        .iter()
                        .map(|v| match v.parse::<usize>() {
                            Ok(n) if n >= 1 => Ok(n),
                            _ => Err(format!(
                                "campaign shards `{v}` (want a count >= 1; `auto` is \
                                 host-dependent and would break config-hash stability)"
                            )),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "faults" => {
                    faults = list()?
                        .into_iter()
                        // Normalise away interior whitespace so the same
                        // schedule always hashes identically.
                        .map(|f| f.split_whitespace().collect::<String>())
                        .collect();
                    for f in &faults {
                        if f != "none" {
                            // Syntax check now; per-topology validation
                            // happens at expansion, where the combination
                            // is known.
                            FaultSchedule::parse(&f.replace('+', ";"), 0, RetryParams::default())
                                .map_err(|e| format!("campaign faults `{f}`: {e}"))?;
                        }
                    }
                }
                "fault-seed" => fault_seeds = parse_u64_list(&list()?, "fault-seed")?,
                "sample" => {
                    let (n, s) = value
                        .split_once('@')
                        .ok_or_else(|| format!("campaign sample `{value}` (want `N @ SEED`)"))?;
                    let n: usize = n
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad sample size `{}`", n.trim()))?;
                    if n == 0 {
                        return Err("campaign sample size must be >= 1".to_string());
                    }
                    let s: u64 = s
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad sample seed `{}`", s.trim()))?;
                    sample = Some((n, s));
                }
                other => {
                    return Err(format!(
                        "unknown campaign key `{other}` (expected topo, machine, app, \
                         pattern, phases, ops, seed, mode, shards, faults, fault-seed, \
                         or sample)"
                    ));
                }
            }
        }
        if topos.is_empty() {
            return Err("campaign spec needs at least one `topo = …` value".to_string());
        }
        let or = |v: Vec<String>, d: &str| if v.is_empty() { vec![d.to_string()] } else { v };
        Ok(CampaignSpec {
            topos,
            machines: or(machines, "test"),
            apps: or(apps, "scientific"),
            patterns: or(patterns, "ring"),
            phases: if phases.is_empty() { vec![5] } else { phases },
            ops: if ops.is_empty() { vec![5_000] } else { ops },
            seeds: if seeds.is_empty() { vec![1] } else { seeds },
            modes: or(modes, "task"),
            shards: if shards.is_empty() { vec![1] } else { shards },
            faults: or(faults, "none"),
            fault_seeds: if fault_seeds.is_empty() {
                vec![1]
            } else {
                fault_seeds
            },
            sample,
        })
    }

    /// Expand the spec into its deterministic run list: the cartesian
    /// product in fixed dimension order (machine, topo, app, pattern,
    /// phases, ops, seed, mode, shards, faults, fault-seed), optionally
    /// thinned to a seeded random sample. Every combination is fully
    /// validated — in particular, scripted link/router faults must name
    /// real elements of every topology they are combined with.
    pub fn expand(&self) -> Result<Vec<RunConfig>, String> {
        let total = self.machines.len()
            * self.topos.len()
            * self.apps.len()
            * self.patterns.len()
            * self.phases.len()
            * self.ops.len()
            * self.seeds.len()
            * self.modes.len()
            * self.shards.len()
            * self.faults.len()
            * self.fault_seeds.len();
        if total > MAX_RUNS && self.sample.is_none() {
            return Err(format!(
                "campaign grid has {total} runs (max {MAX_RUNS}); add `sample = N @ SEED` \
                 to draw a random subset"
            ));
        }
        // Validate each (faults, topo) pairing once, not per grid cell.
        for f in &self.faults {
            if f == "none" {
                continue;
            }
            for t in &self.topos {
                let topo = parse_topology(t)?;
                let sched = FaultSchedule::parse(&f.replace('+', ";"), 0, RetryParams::default())?;
                sched
                    .try_validate(&topo)
                    .map_err(|e| format!("campaign faults `{f}` is invalid for topo `{t}`: {e}"))?;
            }
        }
        let mut runs = Vec::with_capacity(total.min(1 << 20));
        for machine in &self.machines {
            for topo in &self.topos {
                for app in &self.apps {
                    for pattern in &self.patterns {
                        for &phases in &self.phases {
                            for &ops in &self.ops {
                                for &seed in &self.seeds {
                                    for mode in &self.modes {
                                        for &shards in &self.shards {
                                            for faults in &self.faults {
                                                for &fault_seed in &self.fault_seeds {
                                                    runs.push(RunConfig {
                                                        machine: machine.clone(),
                                                        topo: topo.clone(),
                                                        app: app.clone(),
                                                        pattern: pattern.clone(),
                                                        phases,
                                                        ops,
                                                        seed,
                                                        mode: mode.clone(),
                                                        shards,
                                                        faults: faults.clone(),
                                                        fault_seed,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some((n, sample_seed)) = self.sample {
            if n < runs.len() {
                runs = sample_preserving_order(runs, n, sample_seed);
            }
        }
        Ok(runs)
    }
}

fn parse_u64_list(items: &[String], key: &str) -> Result<Vec<u64>, String> {
    items
        .iter()
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("bad campaign {key} `{v}` (want an unsigned integer)"))
        })
        .collect()
}

fn dedup_preserving_order(items: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    items
        .into_iter()
        .filter(|i| seen.insert(i.clone()))
        .collect()
}

/// Draw `n` distinct elements with a seeded Fisher–Yates selection, then
/// restore expansion order — so a sampled campaign is still a stable,
/// resumable subset of the grid.
fn sample_preserving_order<T>(items: Vec<T>, n: usize, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..items.len()).collect();
    for i in 0..n {
        let j = i + rng.gen_range(0..(idx.len() - i) as u64) as usize;
        idx.swap(i, j);
    }
    let mut keep: Vec<usize> = idx[..n].to_vec();
    keep.sort_unstable();
    let mut keep_iter = keep.into_iter().peekable();
    items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| {
            if keep_iter.peek() == Some(i) {
                keep_iter.next();
                true
            } else {
                false
            }
        })
        .map(|(_, x)| x)
        .collect()
}

/// Execute one run and fold its results into a [`CampaignRecord`]. The
/// configuration was validated at expansion time, so failures here are
/// simulator invariant violations, not user errors.
pub fn execute_run(cfg: &RunConfig) -> CampaignRecord {
    execute_run_opts(cfg, false)
}

/// [`execute_run`] with the attribution pass switchable: when enabled,
/// the run carries a bottleneck-attribution sink and the record's
/// [`AttrHeadline`] is filled in. The predicted results are identical
/// either way (the sink only observes).
pub fn execute_run_opts(cfg: &RunConfig, attribution: bool) -> CampaignRecord {
    execute_run_ckpt(cfg, attribution, None).expect("a checkpoint-free run performs no fallible IO")
}

/// One run's rolling-checkpoint plan: the snapshot lives at `path`,
/// refreshed every `every_ps` simulated picoseconds, deleted when the
/// run completes unless `keep` is set.
struct CkptPlan<'a> {
    path: &'a Path,
    every_ps: u64,
    keep: bool,
}

/// Load a run's rolling checkpoint if one is present and usable.
/// Anything unusable — a torn file, a schema or config-hash mismatch,
/// an attribution-less snapshot for an attribution campaign — is
/// reported to stderr, removed, and the run starts fresh: a checkpoint
/// is an optimisation, never a correctness requirement, and the restored
/// record is byte-identical to the from-scratch one either way.
fn load_usable_checkpoint(path: &Path, hash: &str, attribution: bool) -> Option<Snapshot> {
    if !path.is_file() {
        return None;
    }
    let discard = |why: String| {
        eprintln!(
            "campaign: ignoring checkpoint {}: {why} (restarting the run from scratch)",
            path.display()
        );
        std::fs::remove_file(path).ok();
        None
    };
    let snap = match Snapshot::read_file(path) {
        Ok(s) => s,
        Err(e) => return discard(e.to_string()),
    };
    if let Err(e) = snap.verify_config(hash) {
        return discard(e.to_string());
    }
    if attribution && snap.attribution.is_none() {
        return discard("it was captured without attribution, which this campaign records".into());
    }
    Some(snap)
}

/// Capture the simulation state of `cfg`'s run into `path` at cadence
/// `every_ps`, keeping the final snapshot instead of deleting it on
/// completion — exactly the file a `--checkpoint` campaign killed
/// between that run's last snapshot refresh and its completion would
/// leave behind. Test and rehearsal support for mid-run resume.
pub fn capture_run_checkpoint(
    cfg: &RunConfig,
    attribution: bool,
    every_ps: u64,
    path: &Path,
) -> Result<(), String> {
    if path.is_file() {
        std::fs::remove_file(path)
            .map_err(|e| format!("cannot remove stale checkpoint {}: {e}", path.display()))?;
    }
    execute_run_ckpt(
        cfg,
        attribution,
        Some(&CkptPlan {
            path,
            every_ps,
            keep: true,
        }),
    )?;
    if !path.is_file() {
        return Err(format!(
            "the run finished before {every_ps} ps — no checkpoint was captured \
             (use a shorter cadence)"
        ));
    }
    Ok(())
}

/// [`execute_run_opts`] with an optional rolling checkpoint: task-mode
/// runs resume from a usable snapshot at `plan.path` and refresh it at
/// the plan's cadence. Detailed-mode runs ignore the plan (the
/// computational model in front of the network is not snapshotted) and
/// simply re-execute from scratch on resume. Only checkpoint IO and
/// snapshot restoration can fail here.
fn execute_run_ckpt(
    cfg: &RunConfig,
    attribution: bool,
    ckpt: Option<&CkptPlan<'_>>,
) -> Result<CampaignRecord, String> {
    let topo = parse_topology(&cfg.topo).expect("validated at expansion");
    let machine = parse_machine(&cfg.machine, topo).expect("validated at expansion");
    let pattern = parse_pattern(&cfg.pattern).expect("validated at expansion");
    let nodes = topo.nodes();
    let mix = match cfg.app.as_str() {
        "integer" => InstructionMix::integer(),
        _ => InstructionMix::scientific(),
    };
    let app = StochasticApp {
        mix,
        phases: cfg.phases,
        ops_per_phase: SizeDist::Fixed(cfg.ops),
        pattern,
        ..StochasticApp::scientific(nodes)
    };
    let gen = StochasticGenerator::new(app, cfg.seed);
    let faults = if cfg.faults == "none" {
        None
    } else {
        let sched = FaultSchedule::parse(
            &cfg.faults.replace('+', ";"),
            cfg.fault_seed,
            RetryParams::default_for(&machine.network),
        )
        .expect("validated at expansion");
        Some(Arc::new(sched))
    };

    let probe = if attribution {
        ProbeHandle::new(ProbeStack::new().with_attribution())
    } else {
        ProbeHandle::disabled()
    };
    let (predicted, comm, ops_simulated) = match cfg.mode.as_str() {
        "detailed" => {
            let traces = gen.generate();
            let r = HybridSim::new(machine)
                .with_probe(probe.clone())
                .with_shards(cfg.shards)
                .with_faults(faults)
                .run(&traces);
            (r.predicted_time, r.comm, r.ops_simulated)
        }
        _ => {
            let traces = gen.generate_task_level();
            match ckpt {
                Some(plan) => {
                    let hash = cfg.config_hash();
                    let restored = load_usable_checkpoint(plan.path, &hash, attribution);
                    let write = |snap: &Snapshot| snap.write_file(plan.path);
                    let ck = CheckpointOpts {
                        every: Duration::from_ps(plan.every_ps),
                        config_hash: hash.clone(),
                        write: &write,
                    };
                    let (comm, _) = run_checkpointed(
                        machine.network,
                        &traces,
                        probe.clone(),
                        cfg.shards,
                        faults,
                        restored.as_ref(),
                        Some(&ck),
                    )
                    .map_err(|e| format!("campaign run {hash}: {e}"))?;
                    if !plan.keep {
                        // The run completed; its rolling checkpoint is spent.
                        std::fs::remove_file(plan.path).ok();
                    }
                    (comm.finish, comm, traces.total_ops() as u64)
                }
                None => {
                    let r = TaskLevelSim::new(machine.network)
                        .with_probe(probe.clone())
                        .with_shards(cfg.shards)
                        .with_faults(faults)
                        .run(&traces);
                    (r.predicted_time, r.comm, r.ops_simulated)
                }
            }
        }
    };
    let attribution = probe.attribution_report(predicted.as_ps()).map(|r| {
        let (dominant, dominant_share_ppm, max_link_util_ppm) = r.headline();
        AttrHeadline {
            dominant: dominant.to_string(),
            dominant_share_ppm,
            max_link_util_ppm,
        }
    });

    let pct = |p: f64| comm.msg_latency.percentile(p).unwrap_or(0);
    Ok(CampaignRecord {
        config_hash: cfg.config_hash(),
        config: cfg.clone(),
        predicted_ps: predicted.as_ps(),
        all_done: comm.all_done,
        events: comm.events,
        ops_simulated,
        msgs_delivered: comm.total_messages,
        bytes_sent: comm.total_bytes,
        latency_p50_ps: pct(50.0),
        latency_p90_ps: pct(90.0),
        latency_p99_ps: pct(99.0),
        latency_max_ps: comm.msg_latency.max().unwrap_or(0),
        delivery: comm.delivery(),
        attribution,
    })
}

/// Load the records already present in a campaign's JSONL stream.
///
/// Tolerates exactly one kind of damage: a truncated *final* line with no
/// terminating newline — the footprint of a campaign killed mid-append.
/// Any other unparseable line is a hard error, because silently skipping
/// it would re-run (and double-record) work.
pub fn load_records(path: &Path) -> Result<Vec<CampaignRecord>, String> {
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let ends_clean = data.ends_with('\n');
    let lines: Vec<&str> = data.lines().collect();
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CampaignRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) if i + 1 == lines.len() && !ends_clean => {
                // Torn tail from a kill mid-write: the run it described
                // was never durably recorded, so it simply re-runs.
            }
            Err(e) => {
                return Err(format!(
                    "corrupt campaign record at {}:{}: {e:?}",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
    Ok(records)
}

/// Options of one `mermaid campaign` invocation.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Output directory (holds [`RUNS_FILE`] and [`CSV_FILE`]).
    pub out_dir: PathBuf,
    /// Worker threads for the fan-out.
    pub jobs: usize,
    /// Stop after at most this many *new* runs (budgeted invocations;
    /// the campaign resumes from where it stopped next time).
    pub limit: Option<usize>,
    /// Echo per-run completion lines to stderr.
    pub progress: bool,
    /// Attach a bottleneck-attribution sink to every new run and record
    /// its [`AttrHeadline`]. Runs recorded without attribution keep their
    /// empty headline until re-run (records are resumed, not recomputed).
    pub attribution: bool,
    /// Mid-run checkpoint cadence in simulated picoseconds (`campaign
    /// --checkpoint <ps>`): every task-mode run keeps a rolling snapshot
    /// at `<out>/checkpoints/<config_hash>.snap`, refreshed at this
    /// cadence and deleted when the run completes. A killed campaign
    /// resumes unfinished runs from their snapshot — byte-identically to
    /// never having been killed. Detailed-mode runs re-execute from
    /// scratch (the computational model is not snapshotted). `None`
    /// disables mid-run checkpointing.
    pub checkpoint_every_ps: Option<u64>,
}

/// Directory holding a campaign's per-run rolling checkpoints.
pub fn checkpoints_dir(out_dir: &Path) -> PathBuf {
    out_dir.join("checkpoints")
}

/// The rolling-checkpoint file of one campaign run, keyed — like its
/// JSONL record — by the stable config hash.
pub fn checkpoint_path(out_dir: &Path, cfg: &RunConfig) -> PathBuf {
    checkpoints_dir(out_dir).join(format!("{}.snap", cfg.config_hash()))
}

/// Summary of a completed (or budget-limited) campaign invocation.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The rendered stdout report.
    pub report: String,
    /// Runs in the expanded spec.
    pub expanded: usize,
    /// Runs already recorded before this invocation.
    pub recorded_before: usize,
    /// Runs executed by this invocation.
    pub executed: usize,
    /// Runs still missing (only with a `limit`).
    pub pending: usize,
}

/// Run a campaign: expand, diff against the existing JSONL, execute the
/// gap with streaming appends, regenerate the CSV view, and render the
/// aggregated comparison report. Everything written and returned is
/// deterministic for a given spec — independent of `jobs`, of kill/resume
/// boundaries, and of completion order.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    let all = spec.expand()?;
    let expanded = all.len();
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    if opts.checkpoint_every_ps.is_some() {
        let dir = checkpoints_dir(&opts.out_dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let runs_path = opts.out_dir.join(RUNS_FILE);
    let csv_path = opts.out_dir.join(CSV_FILE);

    // Resume: whatever the stream already holds is done; first record
    // wins on (harmless) duplicate hashes.
    let mut by_hash: BTreeMap<String, CampaignRecord> = BTreeMap::new();
    for r in load_records(&runs_path)? {
        by_hash.entry(r.config_hash.clone()).or_insert(r);
    }
    // A torn tail (kill mid-append) was dropped by the load above; cut it
    // off the file too, or the next append would concatenate onto it and
    // manufacture a genuinely corrupt line.
    if let Ok(data) = std::fs::read(&runs_path) {
        if !data.is_empty() && data.last() != Some(&b'\n') {
            let keep = data.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&runs_path)
                .map_err(|e| format!("cannot open {}: {e}", runs_path.display()))?;
            f.set_len(keep as u64).map_err(|e| {
                format!("cannot truncate torn tail of {}: {e}", runs_path.display())
            })?;
        }
    }
    let wanted: std::collections::BTreeSet<String> = all.iter().map(|c| c.config_hash()).collect();
    let stale = by_hash.len() - by_hash.keys().filter(|h| wanted.contains(*h)).count();
    let recorded_before = by_hash.keys().filter(|h| wanted.contains(*h)).count();

    let mut todo: Vec<RunConfig> = all
        .iter()
        .filter(|c| !by_hash.contains_key(&c.config_hash()))
        .cloned()
        .collect();
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }
    let executed = todo.len();

    // Stream: append one JSON line per completed run, fsync-free but
    // flushed, under a lock shared with the progress output.
    if !todo.is_empty() {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&runs_path)
            .map_err(|e| format!("cannot open {}: {e}", runs_path.display()))?;
        let sink = Mutex::new((file, 0usize, None::<String>));
        let total = todo.len();
        let progress = opts.progress;
        let attribution = opts.attribution;
        let ckpt_every = opts.checkpoint_every_ps;
        let out_dir = opts.out_dir.clone();
        let worker = move |cfg: &RunConfig| -> Result<CampaignRecord, String> {
            match ckpt_every {
                Some(every_ps) => {
                    let path = checkpoint_path(&out_dir, cfg);
                    execute_run_ckpt(
                        cfg,
                        attribution,
                        Some(&CkptPlan {
                            path: &path,
                            every_ps,
                            keep: false,
                        }),
                    )
                }
                None => Ok(execute_run_opts(cfg, attribution)),
            }
        };
        let new_records = sweep::parallel_sweep_streaming(todo, opts.jobs, worker, |_, rec| {
            let mut guard = sink.lock().unwrap();
            let (file, done, err) = &mut *guard;
            if err.is_some() {
                return;
            }
            let rec = match rec {
                Ok(r) => r,
                Err(e) => {
                    *err = Some(e.clone());
                    return;
                }
            };
            let line = match serde_json::to_string(rec) {
                Ok(l) => l,
                Err(e) => {
                    *err = Some(format!("cannot serialise campaign record: {e:?}"));
                    return;
                }
            };
            if let Err(e) = file
                .write_all(line.as_bytes())
                .and_then(|_| file.write_all(b"\n"))
                .and_then(|_| file.flush())
            {
                *err = Some(format!("cannot append to {}: {e}", runs_path.display()));
                return;
            }
            *done += 1;
            if progress {
                eprintln!(
                    "campaign: [{done}/{total}] {} {} {} -> {}",
                    rec.config.topo,
                    rec.config.pattern,
                    rec.config_hash,
                    Time::from_ps(rec.predicted_ps)
                );
            }
        });
        if let Some(e) = sink.into_inner().unwrap().2 {
            return Err(e);
        }
        for r in new_records.into_iter().flatten() {
            by_hash.entry(r.config_hash.clone()).or_insert(r);
        }
    }

    // The CSV view and the report cover the *current expansion* in
    // expansion order — stale records stay in the JSONL but are ignored.
    let ordered: Vec<&CampaignRecord> = all
        .iter()
        .filter_map(|c| by_hash.get(&c.config_hash()))
        .collect();
    let mut csv = CampaignRecord::csv_header();
    for r in &ordered {
        csv.push_str(&r.csv_row());
    }
    std::fs::write(&csv_path, &csv)
        .map_err(|e| format!("cannot write {}: {e}", csv_path.display()))?;

    let pending = expanded - ordered.len();
    let mut report = format!(
        "campaign: {expanded} run(s) expanded, {recorded_before} already recorded, \
         {executed} executed\n"
    );
    if stale > 0 {
        report.push_str(&format!(
            "          {stale} stale record(s) in {} not part of this spec (ignored)\n",
            RUNS_FILE
        ));
    }
    if pending > 0 {
        report.push_str(&format!(
            "          {pending} run(s) still pending (re-run without --limit to finish)\n"
        ));
    }
    report.push_str(&format!(
        "records:  {}\ncsv:      {}\n",
        runs_path.display(),
        csv_path.display()
    ));
    if !ordered.is_empty() {
        report.push('\n');
        report.push_str(&report::campaign_table(&ordered).render());
    }
    Ok(CampaignOutcome {
        report,
        expanded,
        recorded_before,
        executed,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::parse(
            "topo = ring:4, mesh:2x2; pattern = ring, all2all; \
             phases = 1; ops = 300; machine = test",
        )
        .unwrap()
    }

    #[test]
    fn spec_parses_with_defaults_and_rejects_junk() {
        let s = tiny_spec();
        assert_eq!(s.topos, vec!["ring:4", "mesh:2x2"]);
        assert_eq!(s.patterns, vec!["ring", "all2all"]);
        assert_eq!(s.machines, vec!["test"]);
        assert_eq!(s.modes, vec!["task"]);
        assert_eq!(s.faults, vec!["none"]);
        assert_eq!(s.phases, vec![1]);

        for bad in [
            "",                               // no topo
            "pattern = ring",                 // no topo
            "topo = blob:3",                  // bad topology
            "topo = ring:4; topo = ring:8",   // duplicate key
            "topo = ring:4; frob = 1",        // unknown key
            "topo = ring:4; machine = vax",   // unknown machine
            "topo = ring:4; phases = 0",      // degenerate workload
            "topo = ring:4; ops = 0",         // degenerate workload
            "topo = ring:4; mode = direct",   // no comm stats to record
            "topo = ring:4; shards = auto",   // host-dependent hash
            "topo = ring:4; shards = 0",      // nonsense
            "topo = ring:4; faults = frob:1", // bad fault clause
            "topo = ring:4; sample = 0 @ 1",  // empty sample
            "topo = ring:4; sample = 5",      // missing seed
            "topo = ring:4; seed = x",        // bad number
            "topo = ring:4; pattern =",       // empty list
        ] {
            assert!(
                CampaignSpec::parse(bad).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_stable_order() {
        let runs = tiny_spec().expand().unwrap();
        assert_eq!(runs.len(), 4);
        // topo is outer, pattern inner (fixed dimension order).
        assert_eq!(
            runs.iter()
                .map(|r| format!("{} {}", r.topo, r.pattern))
                .collect::<Vec<_>>(),
            vec![
                "ring:4 ring",
                "ring:4 all2all",
                "mesh:2x2 ring",
                "mesh:2x2 all2all"
            ]
        );
        // Hashes are distinct and stable across re-expansion.
        let again = tiny_spec().expand().unwrap();
        assert_eq!(runs, again);
        let hashes: std::collections::BTreeSet<_> = runs.iter().map(|r| r.config_hash()).collect();
        assert_eq!(hashes.len(), runs.len());
    }

    #[test]
    fn config_hash_is_pinned() {
        // The persisted-log stability contract: this exact configuration
        // must hash to this exact value in every future release (or the
        // canonical prefix must be bumped — see DESIGN.md §13).
        let cfg = RunConfig {
            machine: "test".into(),
            topo: "ring:4".into(),
            app: "scientific".into(),
            pattern: "ring".into(),
            phases: 1,
            ops: 300,
            seed: 1,
            mode: "task".into(),
            shards: 1,
            faults: "none".into(),
            fault_seed: 1,
        };
        assert_eq!(
            cfg.canonical(),
            "campaign-v1 machine=test topo=ring:4 app=scientific pattern=ring phases=1 \
             ops=300 seed=1 mode=task shards=1 faults=none fault-seed=1"
        );
        assert_eq!(
            cfg.config_hash(),
            format!("{:016x}", fnv1a64(cfg.canonical().as_bytes()))
        );
        // Any field change changes the hash.
        let mut other = cfg.clone();
        other.seed = 2;
        assert_ne!(cfg.config_hash(), other.config_hash());
    }

    #[test]
    fn sampling_is_seeded_and_order_preserving() {
        let spec =
            CampaignSpec::parse("topo = ring:4; seed = 1,2,3,4,5,6,7,8; sample = 3 @ 9").unwrap();
        let a = spec.expand().unwrap();
        let b = spec.expand().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "same sample seed, same subset");
        // The subset preserves grid order (seeds ascending here).
        let seeds: Vec<u64> = a.iter().map(|r| r.seed).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(seeds, sorted);
        // A different shuffle seed draws a different subset.
        let other = CampaignSpec::parse("topo = ring:4; seed = 1,2,3,4,5,6,7,8; sample = 3 @ 10")
            .unwrap()
            .expand()
            .unwrap();
        assert!(a != other || a.len() == 3); // overwhelmingly different; never panics
    }

    #[test]
    fn scripted_faults_must_name_links_of_every_topology() {
        let spec = CampaignSpec::parse("topo = ring:4, mesh:2x2; faults = link:0-3:1000").unwrap();
        // 0-3 is a ring:4 link but not a mesh:2x2 link.
        let err = spec.expand().unwrap_err();
        assert!(err.contains("mesh:2x2"), "{err}");
        // Rate-only faults combine with anything.
        let spec = CampaignSpec::parse("topo = ring:4, mesh:2x2; faults = drop:1000").unwrap();
        assert_eq!(spec.expand().unwrap().len(), 2);
    }

    #[test]
    fn records_serialise_to_one_json_line_and_back() {
        let rec = execute_run(&tiny_spec().expand().unwrap()[0]);
        let line = serde_json::to_string(&rec).unwrap();
        assert!(!line.contains('\n'));
        let back: CampaignRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
        assert!(rec.all_done);
        assert!(rec.predicted_ps > 0);
        assert_eq!(rec.config_hash, rec.config.config_hash());
    }

    #[test]
    fn attribution_headline_is_recorded_only_when_enabled() {
        let cfg = &tiny_spec().expand().unwrap()[0];
        let plain = execute_run(cfg);
        assert_eq!(plain.attribution, None);
        let attr = execute_run_opts(cfg, true);
        let h = attr.attribution.clone().expect("headline recorded");
        assert!(!h.dominant.is_empty());
        assert!(h.dominant_share_ppm <= 1_000_000);
        assert!(h.max_link_util_ppm > 0);
        // The attribution pass only observes — predictions are unchanged.
        assert_eq!(plain.predicted_ps, attr.predicted_ps);
        assert_eq!(plain.events, attr.events);
        assert_eq!(plain.msgs_delivered, attr.msgs_delivered);
        // The CSV row carries the headline columns; empty when absent.
        assert!(attr.csv_row().contains(&h.dominant));
        assert!(plain.csv_row().trim_end().ends_with(",,"));
        // And the record round-trips with the headline intact.
        let line = serde_json::to_string(&attr).unwrap();
        let back: CampaignRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, attr);
    }

    #[test]
    fn load_records_tolerates_only_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("mermaid-campaign-ut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        let rec = execute_run(&tiny_spec().expand().unwrap()[0]);
        let line = serde_json::to_string(&rec).unwrap();

        // A clean line plus a torn (no-newline) tail: the tail is dropped.
        std::fs::write(&path, format!("{line}\n{{\"config_hash\":\"tor")).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded, vec![rec.clone()]);

        // The same garbage *with* a newline is corruption, not a torn tail.
        std::fs::write(&path, format!("{line}\n{{\"config_hash\":\"tor\n")).unwrap();
        assert!(load_records(&path).is_err());

        // Corruption in the middle is always an error.
        std::fs::write(&path, format!("garbage\n{line}\n")).unwrap();
        assert!(load_records(&path).is_err());

        // A missing file is an empty campaign.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(load_records(&path).unwrap(), Vec::<CampaignRecord>::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
