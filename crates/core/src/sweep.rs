//! Parallel design-space sweeps.
//!
//! The workbench's core activity is scenario analysis: the same workload
//! over a grid of candidate architectures. Individual simulations are
//! deterministic and independent, so the grid is embarrassingly parallel —
//! this module fans a sweep out over the host's cores with a simple shared
//! work queue (std scoped threads; results keep the input order, so a
//! parallel sweep is bit-identical to a serial one).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker thread per available host core (at least one).
pub fn auto_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Worker count for a sweep whose individual runs are themselves
/// multi-threaded: caps `workers × max_shards` at the host core count so
/// sharded runs don't oversubscribe the machine (at least one worker).
pub fn auto_workers_for(max_shards: usize) -> usize {
    workers_for(auto_workers(), max_shards)
}

fn workers_for(cores: usize, max_shards: usize) -> usize {
    (cores / max_shards.max(1)).max(1)
}

/// Run `f` over every configuration, in parallel, preserving input order.
///
/// `f` must be deterministic for reproducible sweeps (every simulator in
/// this workspace is). Panics in `f` are propagated.
pub fn parallel_sweep<C, T, F>(configs: Vec<C>, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    parallel_sweep_streaming(configs, auto_workers(), f, |_, _| {})
}

/// [`parallel_sweep`] with an explicit worker count and a streaming
/// completion hook: `on_done(index, &result)` fires as each configuration
/// finishes (in completion order, from whichever worker ran it), so long
/// campaigns can persist results incrementally instead of waiting for the
/// final barrier. `on_done` is serialised behind a lock — it never runs
/// concurrently with itself — and the returned vector still preserves
/// input order.
pub fn parallel_sweep_streaming<C, T, F, S>(
    configs: Vec<C>,
    workers: usize,
    f: F,
    on_done: S,
) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
    S: Fn(usize, &T) + Sync,
{
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers <= 1 {
        return configs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let out = f(c);
                on_done(i, &out);
                out
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // std::thread::scope joins every worker on exit and re-raises the first
    // worker panic, so panics in `f` propagate to the caller.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let out = f(&configs[i]);
                {
                    let _g = done.lock().unwrap();
                    on_done(i, &out);
                }
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("sweep slot unfilled"))
        .collect()
}

/// Convenience: sweep labelled configurations and return `(label, value)`
/// pairs in input order.
pub fn labelled_sweep<C, T, F>(configs: Vec<(String, C)>, f: F) -> Vec<(String, T)>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    let (labels, cfgs): (Vec<String>, Vec<C>) = configs.into_iter().unzip();
    labels.into_iter().zip(parallel_sweep(cfgs, f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridSim;
    use crate::machines::MachineConfig;
    use mermaid_network::Topology;
    use mermaid_tracegen::{CommPattern, SizeDist, StochasticApp, StochasticGenerator};

    #[test]
    fn shard_aware_workers_cap_total_threads_at_the_core_count() {
        // workers × shards never exceeds the core count, and both floors
        // hold: at least one worker, shards of zero treated as one.
        assert_eq!(workers_for(8, 1), 8);
        assert_eq!(workers_for(8, 2), 4);
        assert_eq!(workers_for(8, 3), 2);
        assert_eq!(workers_for(8, 16), 1);
        assert_eq!(workers_for(1, 4), 1);
        assert_eq!(workers_for(8, 0), 8);
        for cores in 1..=16usize {
            for shards in 1..=8usize {
                let w = workers_for(cores, shards);
                assert!(w >= 1);
                assert!(
                    w == 1 || w * shards <= cores,
                    "{cores} cores {shards} shards -> {w}"
                );
            }
        }
        assert!(auto_workers_for(1) >= 1);
    }

    #[test]
    fn parallel_results_preserve_order() {
        let inputs: Vec<u64> = (0..57).collect();
        let out = parallel_sweep(inputs.clone(), |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<u32> = parallel_sweep(Vec::<u32>::new(), |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_simulation_sweep_matches_serial() {
        let app = StochasticApp {
            phases: 2,
            ops_per_phase: SizeDist::Fixed(500),
            pattern: CommPattern::NearestNeighborRing,
            ..StochasticApp::scientific(4)
        };
        let traces = StochasticGenerator::new(app, 3).generate();
        let topos = vec![
            Topology::Ring(4),
            Topology::FullyConnected(4),
            Topology::Mesh2D { w: 2, h: 2 },
            Topology::Star(4),
        ];
        let serial: Vec<_> = topos
            .iter()
            .map(|&t| {
                HybridSim::new(MachineConfig::test_machine(t))
                    .run(&traces)
                    .predicted_time
            })
            .collect();
        let parallel = parallel_sweep(topos, |&t| {
            HybridSim::new(MachineConfig::test_machine(t))
                .run(&traces)
                .predicted_time
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn labelled_sweep_pairs_names() {
        let out = labelled_sweep(vec![("a".to_string(), 1u32), ("b".to_string(), 2)], |&x| {
            x + 10
        });
        assert_eq!(out, vec![("a".to_string(), 11), ("b".to_string(), 12)]);
    }

    #[test]
    fn streaming_sweep_reports_every_completion_and_preserves_order() {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let inputs: Vec<u64> = (0..33).collect();
        let seen = Mutex::new(BTreeSet::new());
        let out = parallel_sweep_streaming(
            inputs.clone(),
            4,
            |&x| x + 1,
            |i, &r| {
                assert_eq!(r, i as u64 + 1, "callback got a mismatched result");
                assert!(seen.lock().unwrap().insert(i), "index {i} reported twice");
            },
        );
        assert_eq!(out, inputs.iter().map(|x| x + 1).collect::<Vec<_>>());
        assert_eq!(seen.lock().unwrap().len(), inputs.len());
    }

    #[test]
    fn streaming_sweep_serial_path_also_streams() {
        use std::sync::Mutex;
        let order = Mutex::new(Vec::new());
        let out = parallel_sweep_streaming(
            vec![10u32, 20, 30],
            1,
            |&x| x,
            |i, _| order.lock().unwrap().push(i),
        );
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        parallel_sweep(vec![1u32, 2, 3, 4, 5, 6, 7, 8], |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}
