//! CPU machine parameters, with calibrated presets.
//!
//! "Every model has a set of machine parameters that is calibrated with
//! published information or by benchmarking" (paper, Section 3). The
//! presets below are calibrated from public datasheet figures for the two
//! processors the paper's evaluation uses: the Inmos T805 transputer and
//! the Motorola PowerPC 601.

use mermaid_ops::{ArithOp, DataType};
use pearl::Frequency;
use serde::{Deserialize, Serialize};

/// Per-operation costs of a CPU, in cycles of its own clock.
///
/// Memory operations additionally pay the memory-hierarchy latency; the
/// cycle counts here are the issue costs of the instructions themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Core clock.
    pub clock: Frequency,
    /// Issue cost of a load (excl. memory hierarchy).
    pub load_cycles: u64,
    /// Issue cost of a store (excl. memory hierarchy).
    pub store_cycles: u64,
    /// Cost of loading an integer constant.
    pub const_cycles: u64,
    /// Cost of loading a floating-point constant.
    pub fconst_cycles: u64,
    /// Integer add/sub.
    pub int_alu_cycles: u64,
    /// Integer multiply.
    pub int_mul_cycles: u64,
    /// Integer divide.
    pub int_div_cycles: u64,
    /// Floating add/sub.
    pub flt_alu_cycles: u64,
    /// Floating multiply.
    pub flt_mul_cycles: u64,
    /// Floating divide.
    pub flt_div_cycles: u64,
    /// Extra cycles for 64-bit (double-width) arithmetic.
    pub double_extra_cycles: u64,
    /// Taken-branch cost (excl. the target's ifetch, which is traced).
    pub branch_cycles: u64,
    /// Function-call overhead.
    pub call_cycles: u64,
    /// Function-return overhead.
    pub ret_cycles: u64,
}

impl CpuParams {
    /// Cycle cost of an arithmetic operation on `ty`.
    pub fn arith_cycles(&self, op: ArithOp, ty: DataType) -> u64 {
        let base = match (op, ty.is_float()) {
            (ArithOp::Add | ArithOp::Sub, false) => self.int_alu_cycles,
            (ArithOp::Mul, false) => self.int_mul_cycles,
            (ArithOp::Div, false) => self.int_div_cycles,
            (ArithOp::Add | ArithOp::Sub, true) => self.flt_alu_cycles,
            (ArithOp::Mul, true) => self.flt_mul_cycles,
            (ArithOp::Div, true) => self.flt_div_cycles,
        };
        let wide = matches!(ty, DataType::I64 | DataType::F64);
        base + if wide { self.double_extra_cycles } else { 0 }
    }

    /// Cycle cost of loading a constant of `ty`.
    pub fn const_load_cycles(&self, ty: DataType) -> u64 {
        if ty.is_float() {
            self.fconst_cycles
        } else {
            self.const_cycles
        }
    }

    /// The Inmos T805 transputer at 30 MHz.
    ///
    /// Calibration (datasheet figures): single-cycle ALU; hardware FPU with
    /// ~2-cycle issue for add, ~11 for multiply (f32), ~30+ for divide;
    /// integer multiply/divide are microcoded (~38 cycles); branches and
    /// call/return are cheap thanks to the three-register workspace model.
    pub fn t805() -> Self {
        CpuParams {
            clock: Frequency::from_mhz(30),
            load_cycles: 1,
            store_cycles: 1,
            const_cycles: 1,
            fconst_cycles: 2,
            int_alu_cycles: 1,
            int_mul_cycles: 38,
            int_div_cycles: 39,
            flt_alu_cycles: 7,
            flt_mul_cycles: 11,
            flt_div_cycles: 30,
            double_extra_cycles: 7,
            branch_cycles: 4,
            call_cycles: 7,
            ret_cycles: 5,
        }
    }

    /// The Motorola PowerPC 601 at 66 MHz.
    ///
    /// Calibration (user manual figures): single-cycle integer ALU,
    /// 5–10-cycle integer multiply (we use 9), 36-cycle divide; pipelined
    /// FPU with 1-cycle throughput/4-cycle latency adds (we charge 1, the
    /// abstract model has no pipelining), 1–2-cycle multiply, 17/31-cycle
    /// f32/f64 divide; folded branches cost ~1 cycle.
    pub fn powerpc601() -> Self {
        CpuParams {
            clock: Frequency::from_mhz(66),
            load_cycles: 1,
            store_cycles: 1,
            const_cycles: 1,
            fconst_cycles: 1,
            int_alu_cycles: 1,
            int_mul_cycles: 9,
            int_div_cycles: 36,
            flt_alu_cycles: 1,
            flt_mul_cycles: 2,
            flt_div_cycles: 17,
            double_extra_cycles: 14,
            branch_cycles: 1,
            call_cycles: 2,
            ret_cycles: 2,
        }
    }

    /// The Intel i860 XP at 50 MHz (the Paragon's node processor).
    ///
    /// Calibration (datasheet figures): single-cycle integer ALU; integer
    /// multiply via the FPU (~6 cycles); no hardware divide (software
    /// sequence, ~38 cycles); pipelined FPU with 3-cycle adds/multiplies
    /// (charged at latency — the abstract model has no pipelining) and
    /// reciprocal-approximation division (~22 cycles); delayed branches
    /// cost ~1 cycle.
    pub fn i860xp() -> Self {
        CpuParams {
            clock: Frequency::from_mhz(50),
            load_cycles: 1,
            store_cycles: 1,
            const_cycles: 1,
            fconst_cycles: 1,
            int_alu_cycles: 1,
            int_mul_cycles: 6,
            int_div_cycles: 38,
            flt_alu_cycles: 3,
            flt_mul_cycles: 3,
            flt_div_cycles: 22,
            double_extra_cycles: 1,
            branch_cycles: 1,
            call_cycles: 2,
            ret_cycles: 2,
        }
    }

    /// A featureless 100 MHz test CPU where every operation costs one
    /// cycle — handy for making test arithmetic predictable.
    pub fn uniform_test() -> Self {
        CpuParams {
            clock: Frequency::from_mhz(100),
            load_cycles: 1,
            store_cycles: 1,
            const_cycles: 1,
            fconst_cycles: 1,
            int_alu_cycles: 1,
            int_mul_cycles: 1,
            int_div_cycles: 1,
            flt_alu_cycles: 1,
            flt_mul_cycles: 1,
            flt_div_cycles: 1,
            double_extra_cycles: 0,
            branch_cycles: 1,
            call_cycles: 1,
            ret_cycles: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_costs_follow_class_and_width() {
        let p = CpuParams::t805();
        assert_eq!(p.arith_cycles(ArithOp::Add, DataType::I32), 1);
        assert_eq!(p.arith_cycles(ArithOp::Sub, DataType::I32), 1);
        assert_eq!(p.arith_cycles(ArithOp::Mul, DataType::I32), 38);
        assert_eq!(p.arith_cycles(ArithOp::Div, DataType::I32), 39);
        assert_eq!(p.arith_cycles(ArithOp::Mul, DataType::F32), 11);
        // 64-bit pays the double surcharge.
        assert_eq!(
            p.arith_cycles(ArithOp::Add, DataType::I64),
            1 + p.double_extra_cycles
        );
        assert_eq!(
            p.arith_cycles(ArithOp::Div, DataType::F64),
            30 + p.double_extra_cycles
        );
    }

    #[test]
    fn const_loads_distinguish_float() {
        let p = CpuParams::t805();
        assert_eq!(p.const_load_cycles(DataType::I32), 1);
        assert_eq!(p.const_load_cycles(DataType::F64), 2);
    }

    #[test]
    fn presets_have_expected_clocks() {
        assert_eq!(CpuParams::t805().clock.as_mhz(), 30);
        assert_eq!(CpuParams::powerpc601().clock.as_mhz(), 66);
    }

    #[test]
    fn faster_preset_has_shorter_cycle() {
        assert!(CpuParams::powerpc601().clock.cycle() < CpuParams::t805().clock.cycle());
    }
}
