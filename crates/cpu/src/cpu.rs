//! The CPU component: executes computational operations against the
//! memory hierarchy.

use mermaid_memory::{Access, AccessReport, MemorySystem};
use mermaid_ops::{Operation, TraceStats};
use pearl::{Duration, Time};

use crate::params::CpuParams;

/// Execution statistics of one CPU.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Operation mix executed.
    pub ops: TraceStats,
    /// Time spent in pure computation (non-memory cycles).
    pub compute_time: Duration,
    /// Time spent waiting on the memory hierarchy (loads/stores/ifetches).
    pub memory_time: Duration,
}

/// One microprocessor of a node.
///
/// The CPU owns a local virtual clock. [`Cpu::execute`] advances it by the
/// cost of one operation; memory operations are timed by the shared
/// [`MemorySystem`], so two CPUs of the same node interact through bus
/// contention and coherence.
#[derive(Debug)]
pub struct Cpu {
    params: CpuParams,
    /// Index of this CPU within its node's memory system.
    mem_port: usize,
    now: Time,
    stats: CpuStats,
}

impl Cpu {
    /// A CPU with its clock at zero, attached to memory port `mem_port`.
    pub fn new(params: CpuParams, mem_port: usize) -> Self {
        Cpu {
            params,
            mem_port,
            now: Time::ZERO,
            stats: CpuStats::default(),
        }
    }

    /// The CPU's machine parameters.
    pub fn params(&self) -> &CpuParams {
        &self.params
    }

    /// The CPU's local virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Force the local clock (used when a node resumes after a blocking
    /// communication completed at a later global time).
    pub fn advance_to(&mut self, t: Time) {
        assert!(t >= self.now, "CPU clock cannot move backwards");
        self.now = t;
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Execute one *computational* operation, advancing the local clock.
    /// Returns the operation's latency.
    ///
    /// Panics on communication operations — those belong to the
    /// communication model; the caller (node simulator / hybrid bridge)
    /// must intercept them.
    pub fn execute(&mut self, op: Operation, mem: &mut MemorySystem) -> Duration {
        debug_assert!(
            op.is_computational(),
            "communication operation {op} reached the CPU model"
        );
        self.stats.ops.record(op);
        let clock = self.params.clock;
        let cycles = move |n: u64| clock.cycles(n);
        let latency = match op {
            Operation::Load { ty, addr } => {
                let r = self.mem(mem, Access::Read, addr, ty.bytes() as u32);
                cycles(self.params.load_cycles) + r.latency
            }
            Operation::Store { ty, addr } => {
                let r = self.mem(mem, Access::Write, addr, ty.bytes() as u32);
                cycles(self.params.store_cycles) + r.latency
            }
            Operation::LoadConst { ty } => {
                let d = cycles(self.params.const_load_cycles(ty));
                self.stats.compute_time += d;
                d
            }
            Operation::Arith { op: a, ty } => {
                let d = cycles(self.params.arith_cycles(a, ty));
                self.stats.compute_time += d;
                d
            }
            Operation::IFetch { addr } => {
                let r = self.mem(mem, Access::IFetch, addr, 4);
                r.latency
            }
            Operation::Branch { .. } => {
                let d = cycles(self.params.branch_cycles);
                self.stats.compute_time += d;
                d
            }
            Operation::Call { .. } => {
                let d = cycles(self.params.call_cycles);
                self.stats.compute_time += d;
                d
            }
            Operation::Ret { .. } => {
                let d = cycles(self.params.ret_cycles);
                self.stats.compute_time += d;
                d
            }
            other => {
                debug_assert!(!other.is_computational());
                panic!("communication operation {op} reached the CPU model")
            }
        };
        self.now += latency;
        latency
    }

    fn mem(&mut self, mem: &mut MemorySystem, kind: Access, addr: u64, size: u32) -> AccessReport {
        let r = mem.access(self.mem_port, kind, addr, size, self.now);
        self.stats.memory_time += r.latency;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_memory::MemSystemConfig;
    use mermaid_ops::{ArithOp, DataType};

    fn setup() -> (Cpu, MemorySystem) {
        (
            Cpu::new(CpuParams::uniform_test(), 0),
            MemorySystem::new(MemSystemConfig::small(1)),
        )
    }

    #[test]
    fn arithmetic_advances_one_cycle() {
        let (mut cpu, mut mem) = setup();
        let d = cpu.execute(
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
            &mut mem,
        );
        // 100 MHz → 10 ns.
        assert_eq!(d, Duration::from_ns(10));
        assert_eq!(cpu.now(), Time::from_ns(10));
        assert_eq!(cpu.stats().compute_time, Duration::from_ns(10));
    }

    #[test]
    fn loads_pay_issue_plus_memory() {
        let (mut cpu, mut mem) = setup();
        let d = cpu.execute(
            Operation::Load {
                ty: DataType::I32,
                addr: 0x100,
            },
            &mut mem,
        );
        // Cold miss: issue 10 ns + (probe 10 + bus 100 + dram 200) ns.
        assert_eq!(d, Duration::from_ns(10 + 310));
        // Warm hit: issue + L1 hit.
        let d2 = cpu.execute(
            Operation::Load {
                ty: DataType::I32,
                addr: 0x104,
            },
            &mut mem,
        );
        assert_eq!(d2, Duration::from_ns(10 + 10));
        assert!(cpu.stats().memory_time > Duration::ZERO);
    }

    #[test]
    fn ifetch_hits_the_icache() {
        let (mut cpu, mut mem) = setup();
        cpu.execute(Operation::IFetch { addr: 0x40 }, &mut mem);
        let d = cpu.execute(Operation::IFetch { addr: 0x44 }, &mut mem);
        assert_eq!(d, Duration::from_ns(10));
        assert_eq!(mem.stats().l1i[0].hits, 1);
    }

    #[test]
    #[should_panic(expected = "communication operation")]
    fn communication_ops_are_rejected() {
        let (mut cpu, mut mem) = setup();
        cpu.execute(Operation::Send { bytes: 8, dst: 1 }, &mut mem);
    }

    #[test]
    fn advance_to_moves_the_clock_forward() {
        let (mut cpu, _) = setup();
        cpu.advance_to(Time::from_us(5));
        assert_eq!(cpu.now(), Time::from_us(5));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_to_rejects_past_times() {
        let (mut cpu, mut mem) = setup();
        cpu.execute(
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
            &mut mem,
        );
        cpu.advance_to(Time::ZERO);
    }

    #[test]
    fn stats_track_the_mix() {
        let (mut cpu, mut mem) = setup();
        cpu.execute(Operation::LoadConst { ty: DataType::I32 }, &mut mem);
        cpu.execute(
            Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::F64,
            },
            &mut mem,
        );
        cpu.execute(Operation::Branch { addr: 0 }, &mut mem);
        assert_eq!(cpu.stats().ops.total, 3);
        assert_eq!(cpu.stats().ops.float_arith, 1);
        assert_eq!(cpu.stats().ops.control, 1);
    }

    #[test]
    fn t805_is_slower_than_ppc601_on_float_work() {
        let mut t805 = Cpu::new(CpuParams::t805(), 0);
        let mut ppc = Cpu::new(CpuParams::powerpc601(), 0);
        let mut mem1 = MemorySystem::new(MemSystemConfig::small(1));
        let mut mem2 = MemorySystem::new(MemSystemConfig::small(1));
        let op = Operation::Arith {
            op: ArithOp::Mul,
            ty: DataType::F64,
        };
        let d1 = t805.execute(op, &mut mem1);
        let d2 = ppc.execute(op, &mut mem2);
        assert!(d1 > d2);
    }
}
