//! The single-node computational model (paper, Fig. 3a): one or more CPUs
//! sharing a cache hierarchy, bus, and memory.
//!
//! Two uses:
//!
//! * [`SingleNodeSim::run`] — simulate a (possibly multiprocessor,
//!   shared-memory) node over instruction-level traces. CPUs are
//!   interleaved in virtual-time order so that bus arbitration and
//!   coherence traffic are resolved in the order they would occur on the
//!   target (Section 4.3).
//! * [`SingleNodeSim::extract_tasks`] — the hybrid-model bridge (Fig. 2):
//!   run one node's instruction-level trace and measure the simulated time
//!   between communication operations, producing the task-level trace
//!   (`compute`/`send`/`recv`) that drives the multi-node communication
//!   model.

use mermaid_memory::{MemStats, MemSystemConfig, MemorySystem};
use mermaid_ops::{Operation, Trace};
use pearl::{Duration, Time};

use crate::cpu::{Cpu, CpuStats};
use crate::params::CpuParams;

/// Result of simulating one node.
#[derive(Debug)]
pub struct NodeResult {
    /// Virtual time at which the last CPU finished.
    pub finish: Time,
    /// Per-CPU finish times.
    pub cpu_finish: Vec<Time>,
    /// Per-CPU execution statistics.
    pub cpu_stats: Vec<CpuStats>,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
}

/// Result of the hybrid-model task extraction.
#[derive(Debug)]
pub struct TaskExtraction {
    /// The task-level trace: `compute(duration)` runs separated by the
    /// original communication operations.
    pub task_trace: Trace,
    /// Statistics of the computational simulation that produced it.
    pub cpu_stats: CpuStats,
    /// Memory-system statistics of that simulation.
    pub mem_stats: MemStats,
    /// Total simulated computation time.
    pub compute_total: Duration,
}

/// A single node of the multicomputer: CPUs + memory system.
pub struct SingleNodeSim {
    cpus: Vec<Cpu>,
    mem: MemorySystem,
}

impl SingleNodeSim {
    /// Build a node with `mem_cfg.cpus` identical processors.
    pub fn new(cpu_params: CpuParams, mem_cfg: MemSystemConfig) -> Self {
        let n = mem_cfg.cpus;
        SingleNodeSim {
            cpus: (0..n).map(|i| Cpu::new(cpu_params, i)).collect(),
            mem: MemorySystem::new(mem_cfg),
        }
    }

    /// Number of processors on the node.
    pub fn cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Attach an instrumentation handle to the node's memory system;
    /// emitted cache/bus events carry `node` as their node index.
    pub fn set_probe(&mut self, node: u32, probe: mermaid_probe::ProbeHandle) {
        self.mem.set_probe(node, probe);
    }

    /// Borrow the memory system (inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Simulator-side memory footprint in bytes (experiment E3).
    pub fn footprint_bytes(&self) -> usize {
        self.mem.footprint_bytes() + self.cpus.capacity() * std::mem::size_of::<Cpu>()
    }

    /// Run one computational trace per CPU to completion, interleaving CPUs
    /// in virtual-time order. Traces must contain only computational
    /// operations (this is the pure shared-memory configuration of
    /// Section 4.3; message passing belongs to the communication model).
    pub fn run(&mut self, traces: &[&Trace]) -> NodeResult {
        assert_eq!(
            traces.len(),
            self.cpus.len(),
            "need one trace per CPU ({} traces, {} CPUs)",
            traces.len(),
            self.cpus.len()
        );
        let mut cursors = vec![0usize; traces.len()];
        loop {
            // Pick the unfinished CPU with the smallest local clock; ties
            // break towards the lower CPU index (deterministic).
            let next = (0..self.cpus.len())
                .filter(|&i| cursors[i] < traces[i].len())
                .min_by_key(|&i| (self.cpus[i].now(), i));
            let Some(i) = next else { break };
            let op = traces[i].ops[cursors[i]];
            assert!(
                op.is_computational(),
                "node {} trace contains communication operation {op}; use the hybrid model",
                i
            );
            self.cpus[i].execute(op, &mut self.mem);
            cursors[i] += 1;
        }
        let cpu_finish: Vec<Time> = self.cpus.iter().map(Cpu::now).collect();
        NodeResult {
            finish: cpu_finish.iter().copied().fold(Time::ZERO, Time::max),
            cpu_finish,
            cpu_stats: self.cpus.iter().map(|c| c.stats().clone()).collect(),
            mem_stats: self.mem.stats(),
        }
    }

    /// Hybrid-model bridge: simulate `trace` on CPU 0 and split it into
    /// computational tasks at its global events (Fig. 2). Communication
    /// operations pass through unchanged; runs of computational operations
    /// become `compute(duration)` with the *simulated* duration measured by
    /// this computational model.
    ///
    /// Zero-length runs (consecutive communication operations) produce no
    /// `compute` operation.
    pub fn extract_tasks(&mut self, trace: &Trace) -> TaskExtraction {
        assert_eq!(self.cpus.len(), 1, "task extraction uses a single-CPU node");
        let cpu = &mut self.cpus[0];
        let mut task_trace = Trace::new(trace.node);
        let mut run_start = cpu.now();
        let mut compute_total = Duration::ZERO;
        for &op in trace.iter() {
            if op.is_computational() {
                cpu.execute(op, &mut self.mem);
            } else {
                let elapsed = cpu.now().since(run_start);
                if !elapsed.is_zero() {
                    task_trace.push(Operation::Compute {
                        ps: elapsed.as_ps(),
                    });
                    compute_total += elapsed;
                }
                task_trace.push(op);
                run_start = cpu.now();
            }
        }
        let tail = cpu.now().since(run_start);
        if !tail.is_zero() {
            task_trace.push(Operation::Compute { ps: tail.as_ps() });
            compute_total += tail;
        }
        TaskExtraction {
            task_trace,
            cpu_stats: self.cpus[0].stats().clone(),
            mem_stats: self.mem.stats(),
            compute_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mermaid_ops::{ArithOp, DataType};

    fn adds(n: usize) -> Vec<Operation> {
        std::iter::repeat_n(
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32,
            },
            n,
        )
        .collect()
    }

    fn node(cpus: usize) -> SingleNodeSim {
        SingleNodeSim::new(CpuParams::uniform_test(), MemSystemConfig::small(cpus))
    }

    #[test]
    fn single_cpu_run_sums_latencies() {
        let mut sim = node(1);
        let t = Trace::from_ops(0, adds(100));
        let r = sim.run(&[&t]);
        // 100 adds × 10 ns.
        assert_eq!(r.finish, Time::from_us(1));
        assert_eq!(r.cpu_stats[0].ops.total, 100);
    }

    #[test]
    fn idle_node_with_empty_traces() {
        let mut sim = node(2);
        let t0 = Trace::new(0);
        let t1 = Trace::new(1);
        let r = sim.run(&[&t0, &t1]);
        assert_eq!(r.finish, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "one trace per CPU")]
    fn trace_count_must_match_cpus() {
        let mut sim = node(2);
        let t = Trace::new(0);
        sim.run(&[&t]);
    }

    #[test]
    #[should_panic(expected = "communication operation")]
    fn comm_ops_rejected_in_shared_memory_run() {
        let mut sim = node(1);
        let t = Trace::from_ops(0, vec![Operation::Send { bytes: 4, dst: 1 }]);
        sim.run(&[&t]);
    }

    #[test]
    fn two_cpus_contend_on_the_bus() {
        // Both CPUs stream loads from disjoint addresses: every miss takes
        // the bus, so the two-CPU run must take longer per CPU than a
        // single-CPU run of the same trace.
        let mk = |node: u32, base: u64| {
            Trace::from_ops(
                node,
                (0..50)
                    .map(|i| Operation::Load {
                        ty: DataType::I32,
                        addr: base + i * 64, // distinct lines
                    })
                    .collect(),
            )
        };
        let mut solo = node(1);
        let solo_r = solo.run(&[&mk(0, 0)]);

        let mut dual = node(2);
        let t0 = mk(0, 0);
        let t1 = mk(1, 1 << 20);
        let dual_r = dual.run(&[&t0, &t1]);
        assert!(dual_r.finish > solo_r.finish);
        assert!(dual_r.mem_stats.bus_wait > Duration::ZERO);
    }

    #[test]
    fn coherent_sharing_stays_consistent() {
        // Two CPUs ping-pong writes to one line.
        let ops = |_: u32| -> Vec<Operation> {
            (0..20)
                .map(|i| Operation::Store {
                    ty: DataType::I32,
                    addr: 0x1000 + (i % 4) * 4,
                })
                .collect()
        };
        let mut sim = node(2);
        let t0 = Trace::from_ops(0, ops(0));
        let t1 = Trace::from_ops(1, ops(1));
        let r = sim.run(&[&t0, &t1]);
        sim.memory().check_coherence(0x1000);
        let inv = r.mem_stats.l1d[0].snoop_invalidations + r.mem_stats.l1d[1].snoop_invalidations;
        assert!(inv > 0, "sharing must generate invalidations");
    }

    #[test]
    fn task_extraction_measures_compute_runs() {
        let mut sim = node(1);
        let mut ops = adds(10);
        ops.push(Operation::Send { bytes: 64, dst: 1 });
        ops.extend(adds(5));
        ops.push(Operation::Recv { src: 1 });
        let t = Trace::from_ops(0, ops);
        let x = sim.extract_tasks(&t);
        assert_eq!(x.task_trace.ops.len(), 4);
        assert_eq!(
            x.task_trace.ops[0],
            Operation::Compute {
                ps: Duration::from_ns(100).as_ps()
            }
        );
        assert_eq!(x.task_trace.ops[1], Operation::Send { bytes: 64, dst: 1 });
        assert_eq!(
            x.task_trace.ops[2],
            Operation::Compute {
                ps: Duration::from_ns(50).as_ps()
            }
        );
        assert_eq!(x.task_trace.ops[3], Operation::Recv { src: 1 });
        assert_eq!(x.compute_total, Duration::from_ns(150));
    }

    #[test]
    fn task_extraction_keeps_trailing_compute() {
        let mut sim = node(1);
        let mut ops = vec![Operation::Recv { src: 1 }];
        ops.extend(adds(3));
        let t = Trace::from_ops(0, ops);
        let x = sim.extract_tasks(&t);
        assert_eq!(x.task_trace.ops.len(), 2);
        assert!(matches!(x.task_trace.ops[0], Operation::Recv { .. }));
        assert!(matches!(x.task_trace.ops[1], Operation::Compute { .. }));
    }

    #[test]
    fn task_extraction_elides_empty_runs() {
        let mut sim = node(1);
        let t = Trace::from_ops(
            0,
            vec![
                Operation::Send { bytes: 1, dst: 1 },
                Operation::Send { bytes: 2, dst: 1 },
            ],
        );
        let x = sim.extract_tasks(&t);
        assert_eq!(x.task_trace.ops.len(), 2);
        assert!(x.task_trace.ops.iter().all(|o| o.is_global_event()));
        assert_eq!(x.compute_total, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "single-CPU node")]
    fn task_extraction_requires_one_cpu() {
        let mut sim = node(2);
        sim.extract_tasks(&Trace::new(0));
    }

    #[test]
    fn footprint_is_reported() {
        assert!(node(4).footprint_bytes() > 0);
    }
}
