//! # mermaid-cpu — the abstract-instruction CPU model
//!
//! The CPU component of the single-node computational template (paper,
//! Fig. 3a). It consumes the *computational operations* of Table 1 — not
//! real machine instructions — which is Mermaid's central performance
//! trade-off: "simulation at the level of operations rather than
//! interpreting real instructions yields higher simulation performance at
//! the cost of a small loss of accuracy" (Section 3.3). Consequences the
//! model inherits from the paper:
//!
//! * No register specifications — pipelines are not cycle-accurately
//!   modelled; each operation has a parameterised cost in CPU cycles.
//! * Memory values are not modelled; loops/branches are already resolved in
//!   the trace, so the CPU executes a linear operation stream.
//! * Memory operations and instruction fetches are timed by the
//!   [`mermaid_memory::MemorySystem`], including cache hits/misses, bus
//!   arbitration and coherence traffic.
//!
//! [`SingleNodeSim`] replicates the CPU over the processors of one node and
//! interleaves them in virtual-time order (a shared-memory multiprocessor,
//! Section 4.3). It also performs the hybrid-model bridge: measuring the
//! simulated time between communication operations to produce task-level
//! traces for the communication model (Fig. 2).

pub mod cpu;
pub mod node;
pub mod params;

pub use cpu::{Cpu, CpuStats};
pub use node::{NodeResult, SingleNodeSim, TaskExtraction};
pub use params::CpuParams;
