//! Trace-driven validation of the computational model: hand-computable
//! workloads must produce hand-computed times, and the model must respond
//! to every machine parameter the paper says it parameterises.

use mermaid_cpu::{CpuParams, SingleNodeSim};
use mermaid_memory::MemSystemConfig;
use mermaid_ops::{ArithOp, DataType, Operation, Trace};
use pearl::{Duration, Frequency};

fn run(cpu: CpuParams, mem: MemSystemConfig, ops: Vec<Operation>) -> Duration {
    let mut sim = SingleNodeSim::new(cpu, mem);
    let t = Trace::from_ops(0, ops);
    sim.run(&[&t]).finish.since(pearl::Time::ZERO)
}

#[test]
fn closed_form_register_workload() {
    // 1000 integer adds + 500 f64 multiplies on the T805:
    // 1000×1 + 500×(11+7) cycles at 30 MHz.
    let p = CpuParams::t805();
    let mut ops = Vec::new();
    for _ in 0..1000 {
        ops.push(Operation::Arith {
            op: ArithOp::Add,
            ty: DataType::I32,
        });
    }
    for _ in 0..500 {
        ops.push(Operation::Arith {
            op: ArithOp::Mul,
            ty: DataType::F64,
        });
    }
    let expect = p.clock.cycles(1000 + 500 * 18);
    assert_eq!(run(p, MemSystemConfig::small(1), ops), expect);
}

#[test]
fn clock_scaling_is_exactly_linear_for_register_work() {
    let mk = |mhz: u64| {
        let mut p = CpuParams::uniform_test();
        p.clock = Frequency::from_mhz(mhz);
        let ops = vec![
            Operation::Arith {
                op: ArithOp::Add,
                ty: DataType::I32
            };
            10_000
        ];
        run(p, MemSystemConfig::small(1), ops)
    };
    // Double the clock → exactly half the time (register work only).
    assert_eq!(mk(50).as_ps(), 2 * mk(100).as_ps());
}

#[test]
fn every_latency_parameter_is_observable() {
    // Bump each CPU cost parameter in turn; the corresponding op gets
    // slower and the others do not.
    let base = CpuParams::uniform_test();
    type Probe = (&'static str, fn(&mut CpuParams), Operation);
    let probes: Vec<Probe> = vec![
        (
            "int_mul",
            |p| p.int_mul_cycles += 5,
            Operation::Arith {
                op: ArithOp::Mul,
                ty: DataType::I32,
            },
        ),
        (
            "flt_div",
            |p| p.flt_div_cycles += 5,
            Operation::Arith {
                op: ArithOp::Div,
                ty: DataType::F32,
            },
        ),
        (
            "branch",
            |p| p.branch_cycles += 5,
            Operation::Branch { addr: 0 },
        ),
        (
            "const",
            |p| p.const_cycles += 5,
            Operation::LoadConst { ty: DataType::I32 },
        ),
    ];
    for (name, bump, op) in probes {
        let before = run(base, MemSystemConfig::small(1), vec![op; 100]);
        let mut p = base;
        bump(&mut p);
        let after = run(p, MemSystemConfig::small(1), vec![op; 100]);
        assert_eq!(
            after,
            before + base.clock.cycles(500),
            "{name} bump must add exactly 5 cycles × 100 ops"
        );
    }
}

#[test]
fn cache_size_parameter_moves_the_hit_rate() {
    // A 16 KiB working set: hit rate collapses when the D-cache shrinks
    // below it.
    let scan: Vec<Operation> = (0..4)
        .flat_map(|_| {
            (0..512u64).map(|i| Operation::Load {
                ty: DataType::I32,
                addr: 0x1000 + i * 32,
            })
        })
        .collect();
    let rate = |l1_bytes: u64| {
        let mut cfg = MemSystemConfig::small(1);
        cfg.l1d.size_bytes = l1_bytes;
        let mut sim = SingleNodeSim::new(CpuParams::uniform_test(), cfg);
        let t = Trace::from_ops(0, scan.clone());
        let r = sim.run(&[&t]);
        r.mem_stats.l1d[0].hit_rate()
    };
    let big = rate(32 * 1024); // holds the whole scan
    let small = rate(2 * 1024); // 8× too small
    assert!(big > 0.7, "big cache should mostly hit: {big}");
    assert!(small < 0.2, "small cache should mostly miss: {small}");
}

#[test]
fn dram_latency_parameter_is_observable_end_to_end() {
    let scan: Vec<Operation> = (0..256u64)
        .map(|i| Operation::Load {
            ty: DataType::I32,
            addr: 0x10_0000 + i * 4096, // every access a fresh line & set
        })
        .collect();
    let time = |dram_ns: u64| {
        let mut cfg = MemSystemConfig::small(1);
        cfg.dram.access_latency = Duration::from_ns(dram_ns);
        run(CpuParams::uniform_test(), cfg, scan.clone())
    };
    let slow = time(1000);
    let fast = time(100);
    // 256 misses × 900 ns difference.
    assert_eq!(slow, fast + Duration::from_ns(256 * 900));
}
