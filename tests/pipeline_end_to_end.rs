//! End-to-end pipeline tests spanning every crate: instrumented programs →
//! physical-time-interleaved generation → trace codecs → hybrid simulation
//! → analysis output (Fig. 1, the whole picture).

use mermaid::prelude::*;
use mermaid::report;
use mermaid_ops::{codec, text};
use mermaid_tracegen::annotate::TargetLayout;
use mermaid_tracegen::programs::{block_matmul, transpose_all_to_all, tree_reduce};
use mermaid_tracegen::InterleavedTraceGen;

fn generate(
    nodes: u32,
    program: impl Fn(&mut mermaid_tracegen::NodeCtx) + Send + Clone + 'static,
) -> TraceSet {
    InterleavedTraceGen::spawn(nodes, TargetLayout::default(), program).collect_all()
}

#[test]
fn matmul_through_the_full_pipeline() {
    let nodes = 4u32;
    let traces = generate(nodes, move |ctx| block_matmul(ctx, nodes, 12));
    assert!(traces.comm_imbalances().is_empty());

    let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 2, h: 2 });
    let r = HybridSim::new(machine).run(&traces);
    assert!(r.comm.all_done, "deadlocked: {:?}", r.comm.deadlocked);
    assert!(r.predicted_time > pearl::Time::ZERO);

    // The analysis tools render without panicking and carry all nodes.
    let table = report::hybrid_table(&r);
    assert_eq!(table.len(), nodes as usize);
    assert!(table.render().contains("l1d hit%"));
    assert!(table.to_csv().lines().count() == nodes as usize + 1);
}

#[test]
fn traces_survive_binary_and_text_codecs_mid_pipeline() {
    let nodes = 3u32;
    let traces = generate(nodes, move |ctx| tree_reduce(ctx, nodes, 64));

    // Binary roundtrip.
    let encoded = codec::encode_trace_set(&traces);
    let decoded = codec::decode_trace_set(encoded).expect("binary roundtrip");
    assert_eq!(decoded, traces);

    // Text roundtrip.
    for t in traces.iter() {
        let rendered = text::format_trace(t);
        let parsed = text::parse_trace(t.node, &rendered).expect("text roundtrip");
        assert_eq!(&parsed, t);
    }

    // The decoded traces simulate identically to the originals.
    let machine = MachineConfig::test_machine(Topology::Ring(nodes));
    let a = HybridSim::new(machine.clone()).run(&traces);
    let b = HybridSim::new(machine).run(&decoded);
    assert_eq!(a.predicted_time, b.predicted_time);
}

#[test]
fn matmul_scales_down_with_more_nodes() {
    // Strong scaling: the same matrix on more nodes must not be slower on
    // a fast network.
    let n = 16u64;
    let run = |nodes: u32| {
        let traces = generate(nodes, move |ctx| block_matmul(ctx, nodes, n));
        let machine = MachineConfig::test_machine(Topology::FullyConnected(nodes));
        HybridSim::new(machine).run(&traces).predicted_time
    };
    let t2 = run(2);
    let t4 = run(4);
    let t8 = run(8);
    assert!(t4 < t2, "4 nodes ({t4}) should beat 2 ({t2})");
    assert!(t8 < t4, "8 nodes ({t8}) should beat 4 ({t4})");
}

#[test]
fn transpose_stresses_every_link_without_deadlock() {
    let nodes = 8u32;
    let traces = generate(nodes, move |ctx| {
        transpose_all_to_all(ctx, nodes, 32 * 1024)
    });
    for topo in [
        Topology::Ring(nodes),
        Topology::Hypercube { dim: 3 },
        Topology::Mesh2D { w: 4, h: 2 },
    ] {
        let machine = MachineConfig::t805_multicomputer(topo);
        let r = HybridSim::new(machine).run(&traces);
        assert!(r.comm.all_done, "deadlock on {}", topo.label());
        assert_eq!(r.comm.total_messages, (nodes * (nodes - 1)) as u64);
    }
}

#[test]
fn execution_driven_pipeline_is_equivalent_to_batch() {
    // The headline property of physical-time interleaving (Section 3.1):
    // the interleaved, execution-driven path produces exactly the traces —
    // and therefore exactly the predictions — of batch generation.
    let nodes = 4u32;
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(nodes));
    let batch = generate(nodes, move |ctx| block_matmul(ctx, nodes, 10));
    let batch_result = HybridSim::new(machine.clone()).run(&batch);

    let gen = InterleavedTraceGen::spawn(nodes, TargetLayout::default(), move |ctx| {
        block_matmul(ctx, nodes, 10)
    });
    let streamed_result = HybridSim::new(machine).run_from_generator(gen);

    assert_eq!(batch_result.predicted_time, streamed_result.predicted_time);
    assert_eq!(batch_result.task_traces, streamed_result.task_traces);
}
