//! Conformance tests for the bottleneck-attribution subsystem.
//!
//! The attribution contract (DESIGN.md §14): the report is a pure
//! function of the probe stream — byte-identical between serial and
//! sharded runs, blind to host timing, and strictly observational (the
//! simulation's own results never move). The per-message latency
//! decomposition is conservative: the six components partition the
//! end-to-end latency exactly, with no residual.

use std::sync::Arc;

use mermaid::prelude::*;
use mermaid_network::{FaultSchedule, RetryParams};
use mermaid_probe::SimEvent;
use pearl::Time;

const TOPOS: [Topology; 4] = [
    Topology::Ring(8),
    Topology::Mesh2D { w: 4, h: 2 },
    Topology::Torus2D { w: 4, h: 2 },
    Topology::Hypercube { dim: 3 },
];

const PATTERNS: [CommPattern; 3] = [
    CommPattern::NearestNeighborRing,
    CommPattern::AllToAll,
    CommPattern::MasterWorker,
];

fn traces(n: u32, pattern: CommPattern, seed: u64) -> TraceSet {
    StochasticGenerator::new(
        StochasticApp {
            phases: 2,
            ops_per_phase: SizeDist::Fixed(500),
            pattern,
            ..StochasticApp::scientific(n)
        },
        seed,
    )
    .generate_task_level()
}

/// A schedule exercising every fault class; link 0–1 and router 2 exist
/// in all topologies under test.
fn eventful_schedule(cfg: &NetworkConfig) -> Arc<FaultSchedule> {
    let mut f = FaultSchedule::new(7)
        .with_retry(RetryParams::default_for(cfg))
        .with_drop_ppm(20_000)
        .with_corrupt_ppm(10_000);
    f.cut_link(0, 1, Time::from_us(2), Some(Time::from_us(60)));
    f.crash_router(2, Time::from_us(10), Some(Time::from_us(80)));
    Arc::new(f)
}

fn attribution_json(
    topo: Topology,
    ts: &TraceSet,
    shards: usize,
    faults: Option<Arc<FaultSchedule>>,
) -> String {
    let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
    let r = TaskLevelSim::new(NetworkConfig::test(topo))
        .with_probe(probe.clone())
        .with_shards(shards)
        .with_faults(faults)
        .run(ts);
    assert!(r.comm.all_done, "{topo:?} deadlocked");
    probe
        .attribution_report(r.predicted_time.as_ps())
        .expect("attribution sink was attached")
        .to_json()
}

#[test]
fn attribution_json_is_byte_identical_serial_vs_sharded() {
    for topo in TOPOS {
        for pattern in PATTERNS {
            let ts = traces(topo.nodes(), pattern, 21);
            let serial = attribution_json(topo, &ts, 1, None);
            let sharded = attribution_json(topo, &ts, 3, None);
            assert_eq!(serial, sharded, "{topo:?} × {pattern:?} diverged");
            assert!(serial.contains("\"schema\":\"mermaid-attribution-v1\""));
        }
    }
}

#[test]
fn faulty_attribution_is_byte_identical_serial_vs_sharded() {
    for topo in TOPOS {
        let cfg = NetworkConfig::test(topo);
        let ts = traces(topo.nodes(), CommPattern::AllToAll, 17);
        let serial = attribution_json(topo, &ts, 1, Some(eventful_schedule(&cfg)));
        let sharded = attribution_json(topo, &ts, 3, Some(eventful_schedule(&cfg)));
        assert_eq!(serial, sharded, "{topo:?} faulty run diverged");
    }
}

#[test]
fn attribution_is_purely_observational() {
    // Attaching the sink must not move a single simulated observable.
    for topo in [Topology::Ring(8), Topology::Torus2D { w: 4, h: 2 }] {
        let ts = traces(topo.nodes(), CommPattern::AllToAll, 5);
        let plain = TaskLevelSim::new(NetworkConfig::test(topo)).run(&ts);
        let probe = ProbeHandle::new(ProbeStack::new().with_attribution());
        let observed = TaskLevelSim::new(NetworkConfig::test(topo))
            .with_probe(probe.clone())
            .run(&ts);
        assert_eq!(
            format!("{:?}", plain.comm),
            format!("{:?}", observed.comm),
            "{topo:?}: attribution perturbed the run"
        );
    }
}

/// Every `msg_path` record partitions its end-to-end latency exactly:
/// overhead + retry + queue + routing + ser + wire == latency.
fn assert_conservation(events: &[SimEvent], ctx: &str) -> u64 {
    let mut paths = 0;
    for ev in events {
        if let SimEvent::MsgPath {
            latency_ps,
            overhead_ps,
            retry_ps,
            queue_ps,
            routing_ps,
            ser_ps,
            wire_ps,
            src,
            dst,
            ..
        } = *ev
        {
            paths += 1;
            let sum = overhead_ps + retry_ps + queue_ps + routing_ps + ser_ps + wire_ps;
            assert_eq!(
                sum, latency_ps,
                "{ctx}: {src}->{dst} components leave a residual"
            );
        }
    }
    paths
}

#[test]
fn latency_components_conserve_end_to_end_latency() {
    for topo in TOPOS {
        let cfg = NetworkConfig::test(topo);
        for faults in [None, Some(eventful_schedule(&cfg))] {
            let ts = traces(topo.nodes(), CommPattern::AllToAll, 13);
            let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
            let r = TaskLevelSim::new(cfg)
                .with_probe(probe.clone())
                .with_faults(faults.clone())
                .run(&ts);
            let events = probe.take_buffer().unwrap();
            let ctx = format!("{topo:?} faults={}", faults.is_some());
            let paths = assert_conservation(&events, &ctx);
            assert_eq!(
                paths, r.comm.total_messages,
                "{ctx}: one msg_path per delivered message"
            );
        }
    }
}
