//! Conformance suite for the fault-injection layer (`mermaid-fault`).
//!
//! Three pillars, straight from the robustness goals of the workbench:
//!
//! 1. **Determinism** — under any scripted fault schedule, a sharded run
//!    must be bit-identical to the serial run: same results, same per-node
//!    stats and histograms, same probe event stream.
//! 2. **Recovery** — when faults heal before the retry budget runs out,
//!    every message is still delivered and nothing is reported failed.
//! 3. **Degradation, not deadlock** — when a partition is permanent, the
//!    run completes with structured unreachable reports instead of
//!    hanging.

use std::sync::Arc;

use mermaid_network::{
    run_sharded_with_faults, CommResult, CommSim, FaultSchedule, NetworkConfig, RetryParams,
    Topology,
};
use mermaid_ops::TraceSet;
use mermaid_probe::{canonical_sort, ProbeHandle, ProbeStack, SimEvent};
use mermaid_tracegen::{CommPattern, StochasticApp, StochasticGenerator};
use pearl::Time;

fn traces(n: u32, pattern: CommPattern, seed: u64) -> TraceSet {
    let app = StochasticApp {
        phases: 3,
        pattern,
        ..StochasticApp::scientific(n)
    };
    StochasticGenerator::new(app, seed).generate_task_level()
}

/// Run serially with faults, capturing the model-level probe stream in
/// canonical order (the order a sharded replay uses; engine-internal
/// events are scheduler bookkeeping and excluded from the contract).
fn run_serial(
    cfg: NetworkConfig,
    ts: &TraceSet,
    faults: &Arc<FaultSchedule>,
) -> (CommResult, Vec<SimEvent>) {
    let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
    let r = CommSim::new_with_faults(cfg, ts, probe.clone(), Arc::clone(faults)).run();
    let mut events: Vec<SimEvent> = probe
        .take_buffer()
        .unwrap()
        .into_iter()
        .filter(|e| !e.is_engine_internal())
        .collect();
    canonical_sort(&mut events);
    (r, events)
}

/// Run on `shards` worker threads with faults, capturing the probe stream
/// (a sharded replay is already canonical).
fn run_shards(
    cfg: NetworkConfig,
    ts: &TraceSet,
    faults: &Arc<FaultSchedule>,
    shards: usize,
) -> (CommResult, Vec<SimEvent>) {
    let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
    let r = run_sharded_with_faults(cfg, ts, probe.clone(), shards, Some(Arc::clone(faults)));
    (r, probe.take_buffer().unwrap())
}

/// A schedule that exercises every fault class: a transient link cut, a
/// router crash with recovery, and background packet loss + corruption.
/// Link 0–1 and router 2 exist in all the topologies under test.
fn eventful_schedule(seed: u64) -> Arc<FaultSchedule> {
    let mut f = FaultSchedule::new(seed)
        .with_drop_ppm(20_000)
        .with_corrupt_ppm(10_000);
    f.cut_link(0, 1, Time::from_us(2), Some(Time::from_us(60)));
    f.crash_router(2, Time::from_us(10), Some(Time::from_us(80)));
    Arc::new(f)
}

#[test]
fn sharded_faulty_runs_are_bit_identical_across_topologies() {
    let topos = [
        Topology::Ring(8),
        Topology::Mesh2D { w: 4, h: 2 },
        Topology::Torus2D { w: 4, h: 2 },
        Topology::Hypercube { dim: 3 },
    ];
    for topo in topos {
        for pattern in [CommPattern::NearestNeighborRing, CommPattern::AllToAll] {
            let ts = traces(topo.nodes(), pattern, 17);
            let faults = eventful_schedule(7);
            let (serial, serial_stream) = run_serial(NetworkConfig::test(topo), &ts, &faults);
            let (sharded, sharded_stream) = run_shards(NetworkConfig::test(topo), &ts, &faults, 3);
            // The Debug rendering covers every field: times, event counts,
            // per-node processor/router stats, histograms, reports.
            assert_eq!(
                format!("{serial:?}"),
                format!("{sharded:?}"),
                "{topo:?} × {pattern:?} results diverged under faults"
            );
            assert_eq!(
                serial_stream, sharded_stream,
                "{topo:?} × {pattern:?} probe streams diverged under faults"
            );
            // The schedule is eventful by construction: the run must have
            // actually seen drops/retries, or this test tests nothing.
            assert!(
                serial.total_dropped > 0 || serial.total_retries > 0,
                "{topo:?} × {pattern:?}: schedule injected nothing"
            );
        }
    }
}

/// Forced speculative windows under an eventful fault schedule: rollback
/// re-execution must reproduce fault state (retry timers, drop/corrupt
/// RNG draws) exactly, so results and probe streams stay bit-identical
/// to the serial run.
#[test]
fn forced_speculation_is_bit_identical_under_faults() {
    use mermaid_network::{run_checkpointed_with, Speculation};

    let topo = Topology::Torus2D { w: 4, h: 2 };
    let ts = traces(topo.nodes(), CommPattern::AllToAll, 17);
    let faults = eventful_schedule(7);
    let (serial, serial_stream) = run_serial(NetworkConfig::test(topo), &ts, &faults);
    assert!(
        serial.total_dropped > 0 || serial.total_retries > 0,
        "schedule injected nothing"
    );
    for policy in [
        Speculation::Off,
        Speculation::Threshold(pearl::Duration::from_ps(1_000_000_000)),
    ] {
        let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let (r, _) = run_checkpointed_with(
            NetworkConfig::test(topo),
            &ts,
            probe.clone(),
            3,
            Some(Arc::clone(&faults)),
            None,
            None,
            policy,
        )
        .expect("a run without checkpoint options cannot fail");
        assert_eq!(
            format!("{serial:?}"),
            format!("{r:?}"),
            "{policy:?} results diverged under faults"
        );
        assert_eq!(
            serial_stream,
            probe.take_buffer().unwrap(),
            "{policy:?} probe streams diverged under faults"
        );
    }
}

#[test]
fn faults_that_heal_before_the_retry_budget_lose_nothing() {
    // Outage windows sit well inside the give-up horizon (the budget sums
    // to ~63× the base timeout), so every message must eventually land.
    for topo in [Topology::Ring(6), Topology::Mesh2D { w: 3, h: 3 }] {
        let cfg = NetworkConfig::test(topo);
        let ts = traces(topo.nodes(), CommPattern::AllToAll, 5);
        let mut f = FaultSchedule::new(3).with_retry(RetryParams::default_for(&cfg));
        f.cut_link(0, 1, Time::from_us(1), Some(Time::from_us(40)));
        f.crash_router(topo.nodes() - 1, Time::from_us(5), Some(Time::from_us(30)));
        let faults = Arc::new(f);
        let (r, _) = run_serial(cfg, &ts, &faults);

        assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        assert_eq!(
            r.msgs_failed, 0,
            "{topo:?}: messages failed despite healing"
        );
        assert!(r.unreachable.is_empty(), "{topo:?}: {:?}", r.unreachable);
        assert_eq!(r.recv_timeouts, 0, "{topo:?}: receives timed out");
        let d = r.delivery();
        assert!(
            d.conserved(),
            "{topo:?}: tracked={} acked={} failed={}",
            d.tracked,
            d.acked,
            d.failed
        );
        assert_eq!(d.delivered_fraction(), Some(1.0));

        // Deliveries match the fault-free run of the same traces.
        let healthy = CommSim::new(cfg, &ts).run();
        assert_eq!(r.total_messages, healthy.total_messages, "{topo:?}");
    }
}

#[test]
fn permanent_partition_degrades_with_reports_and_never_deadlocks() {
    // The acceptance scenario: a 4×4 mesh whose corner node 15 loses both
    // of its links at t=0, permanently, under all-to-all traffic. Every
    // sender that targets node 15 must exhaust its retries and file a
    // structured unreachable report; node 15's own traffic fails too; the
    // run completes (degraded) on every node, identically serial vs
    // sharded.
    let topo = Topology::Mesh2D { w: 4, h: 4 };
    let cfg = NetworkConfig::test(topo);
    let ts = traces(16, CommPattern::AllToAll, 23);
    // Network-scaled retry defaults: generous enough that congested-but-
    // healthy pairs never spuriously give up, so every report points at
    // the real partition.
    let retry = RetryParams::default_for(&cfg);
    let mut f = FaultSchedule::new(1).with_retry(retry);
    f.cut_link(15, 11, Time::ZERO, None);
    f.cut_link(15, 14, Time::ZERO, None);
    let faults = Arc::new(f);

    let (serial, serial_stream) = run_serial(cfg, &ts, &faults);
    let (sharded, sharded_stream) = run_shards(cfg, &ts, &faults, 3);
    assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    assert_eq!(serial_stream, sharded_stream);

    // Completion, not deadlock: every processor ran its trace to the end.
    assert!(serial.all_done, "deadlocked nodes: {:?}", serial.deadlocked);
    assert!(serial.deadlocked.is_empty());

    // Structured degradation: failures were reported, every unreachable
    // pair involves the partitioned corner, and the reports carry the
    // exhausted retry budget.
    assert!(serial.degraded());
    assert!(serial.msgs_failed > 0);
    let pairs = serial.unreachable_pairs();
    assert!(!pairs.is_empty());
    for (src, dst) in &pairs {
        assert!(
            *src == 15 || *dst == 15,
            "unreachable pair {src}->{dst} does not involve the partitioned node"
        );
    }
    for rep in &serial.unreachable {
        assert_eq!(
            rep.retries, retry.max_retries,
            "report should carry the exhausted budget"
        );
    }
    // Both directions degraded: the cut strands traffic into *and* out of
    // the corner.
    assert!(pairs.iter().any(|&(_, dst)| dst == 15));
    assert!(serial.recv_timeouts > 0, "blocked receives must time out");

    // Conservation: every tracked message was acked or reported, none
    // vanished.
    let d = serial.delivery();
    assert!(
        d.conserved(),
        "tracked={} acked={} failed={}",
        d.tracked,
        d.acked,
        d.failed
    );
    assert!(d.delivered_fraction().unwrap() < 1.0);
}

#[test]
fn disabled_fault_layer_is_bit_identical_to_the_plain_path() {
    // Zero cost when disabled: threading `None` through the fault plumbing
    // must reproduce the plain run exactly, probe stream included.
    let topo = Topology::Torus2D { w: 4, h: 2 };
    let ts = traces(8, CommPattern::Butterfly, 29);

    let plain_probe = ProbeHandle::new(ProbeStack::new().with_jsonl());
    let plain = CommSim::new_with_probe(NetworkConfig::test(topo), &ts, plain_probe.clone()).run();

    let off_probe = ProbeHandle::new(ProbeStack::new().with_jsonl());
    let off = run_sharded_with_faults(NetworkConfig::test(topo), &ts, off_probe.clone(), 1, None);

    assert_eq!(format!("{plain:?}"), format!("{off:?}"));
    assert_eq!(plain_probe.jsonl_output(), off_probe.jsonl_output());
    assert_eq!(off.total_retries, 0);
    assert_eq!(off.delivery().tracked, 0);
}

#[test]
fn late_re_acks_are_ignored_not_fatal() {
    // Regression test for the duplicate-completion panic: an aggressive
    // retry fuse — far shorter than a healthy round trip — makes every
    // sender retransmit while its first acknowledgement is still in
    // flight. The receiver re-acks each duplicate arrival, so senders see
    // acks for messages they have *already* completed (and receivers see
    // packets of messages they already assembled). All of those late
    // re-acks must be dropped silently; the completion APIs used to treat
    // an unknown token as a panic-worthy protocol error, which took the
    // whole simulation down in exactly this race.
    let topo = Topology::Ring(4);
    let cfg = NetworkConfig::test(topo);
    let n = topo.nodes();
    let mut ts = TraceSet::new(n as usize);
    for node in 0..n {
        ts.trace_mut(node).ops = vec![
            mermaid_ops::Operation::Send {
                bytes: 64,
                dst: (node + 1) % n,
            },
            mermaid_ops::Operation::Recv {
                src: (node + n - 1) % n,
            },
            mermaid_ops::Operation::ASend {
                bytes: 200,
                dst: (node + 2) % n,
            },
            mermaid_ops::Operation::Recv {
                src: (node + 2) % n,
            },
        ];
    }
    // No scripted faults and no background loss: every retransmission is
    // spurious, so every one of its acks arrives late by construction.
    // The first timeouts fire at 100 ns — before any 64-byte round trip
    // completes — while the exponential backoff (capped at 5 µs, budget of
    // 50 retries) guarantees the protocol always outlasts the congestion
    // its own duplicates create.
    let retry = RetryParams {
        base_timeout: pearl::Duration::from_ps(100_000), // 100 ns
        backoff_cap: pearl::Duration::from_us(5),
        max_retries: 50,
        recv_timeout: pearl::Duration::from_ms(50),
    };
    let faults = Arc::new(FaultSchedule::new(11).with_retry(retry));

    let (serial, serial_stream) = run_serial(cfg, &ts, &faults);
    let (sharded, sharded_stream) = run_shards(cfg, &ts, &faults, 3);
    assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    assert_eq!(serial_stream, sharded_stream);

    // The race actually happened: retransmissions fired with nothing lost.
    assert!(
        serial.total_retries > 0,
        "fuse long enough that no ack was ever late — test exercises nothing"
    );
    // And it was harmless: everything delivered, nothing failed, nothing
    // wedged, every tracked message accounted for exactly once.
    assert!(serial.all_done, "deadlocked: {:?}", serial.deadlocked);
    assert_eq!(serial.msgs_failed, 0);
    assert!(serial.unreachable.is_empty());
    let d = serial.delivery();
    assert!(d.conserved(), "tracked={} acked={}", d.tracked, d.acked);
    assert_eq!(d.delivered_fraction(), Some(1.0));
}

#[test]
fn parsed_cli_specs_behave_like_built_schedules() {
    // The CLI spec grammar and the builder API must describe the same
    // schedule: parse a spec, build its twin by hand, compare runs.
    let topo = Topology::Ring(6);
    let cfg = NetworkConfig::test(topo);
    let ts = traces(6, CommPattern::AllToAll, 41);

    let spec = "link:0-1:2000:60000\nrouter:3:10000:80000\ndrop:20000";
    let parsed = Arc::new(
        FaultSchedule::parse(spec, 7, RetryParams::default_for(&cfg)).expect("spec parses"),
    );
    let mut built = FaultSchedule::new(7)
        .with_drop_ppm(20_000)
        .with_retry(RetryParams::default_for(&cfg));
    built.cut_link(0, 1, Time::from_us(2), Some(Time::from_us(60)));
    built.crash_router(3, Time::from_us(10), Some(Time::from_us(80)));
    let built = Arc::new(built);

    let (from_spec, spec_stream) = run_serial(cfg, &ts, &parsed);
    let (from_builder, builder_stream) = run_serial(cfg, &ts, &built);
    assert_eq!(format!("{from_spec:?}"), format!("{from_builder:?}"));
    assert_eq!(spec_stream, builder_stream);
}
