//! The paper's qualitative claims, encoded as assertions. Each test cites
//! the section it checks. Host-timing comparisons use generous margins so
//! the suite stays robust on loaded machines.

use mermaid::prelude::*;
use mermaid::{DirectExecSim, ModelFootprint};
use std::time::Instant;

fn app(nodes: u32, ops: u64) -> StochasticApp {
    StochasticApp {
        phases: 4,
        ops_per_phase: SizeDist::Fixed(ops),
        pattern: CommPattern::NearestNeighborRing,
        msg_bytes: SizeDist::Fixed(4096),
        ..StochasticApp::scientific(nodes)
    }
}

/// §6: "simulation at this [task] level of abstraction results in a typical
/// slowdown of between 0.5 and 4 per processor … an entire multicomputer
/// can be simulated with only a minor slowdown" — i.e. the task-level mode
/// must be dramatically cheaper per simulated event than the detailed mode.
#[test]
fn task_level_is_far_cheaper_than_detailed() {
    let nodes = 16;
    let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 });
    let gen = StochasticGenerator::new(app(nodes, 20_000), 5);
    let instr = gen.generate();
    let task = gen.generate_task_level();

    let t0 = Instant::now();
    let detailed = HybridSim::new(machine.clone()).run(&instr);
    let detailed_host = t0.elapsed();

    let t0 = Instant::now();
    let fast = TaskLevelSim::new(machine.network).run(&task);
    let fast_host = t0.elapsed();

    assert!(detailed.comm.all_done && fast.comm.all_done);
    // The paper's gap was ~200–8000×; require at least 10× to stay robust.
    assert!(
        detailed_host.as_secs_f64() > 10.0 * fast_host.as_secs_f64(),
        "detailed {detailed_host:?} should dwarf task-level {fast_host:?}"
    );
}

/// §2: direct execution's weakness — "the performance evaluation of
/// instruction or private data caches can only be marginally performed".
/// Doubling the cache changes the hybrid prediction but not the baseline's.
#[test]
fn direct_execution_is_blind_to_cache_size() {
    let nodes = 4;
    let traces = StochasticGenerator::new(app(nodes, 10_000), 9).generate();
    let small = MachineConfig::t805_multicomputer(Topology::Ring(nodes));
    let mut big = small.clone();
    big.node_mem.l1d.size_bytes *= 16;
    big.node_mem.l1i.size_bytes *= 16;

    let h_small = HybridSim::new(small.clone()).run(&traces).predicted_time;
    let h_big = HybridSim::new(big.clone()).run(&traces).predicted_time;
    assert!(
        h_big < h_small,
        "the detailed model must reward a bigger cache"
    );

    let d_small = DirectExecSim::new(small).run(&traces).predicted_time;
    let d_big = DirectExecSim::new(big).run(&traces).predicted_time;
    assert_eq!(d_small, d_big, "the static estimator cannot see cache size");
}

/// §6: "simulated caches only need to hold addresses (tags), not data" —
/// the model of a node must be smaller than the memory it simulates, and
/// independent of the simulated DRAM size entirely.
#[test]
fn model_state_is_tags_only() {
    let f = ModelFootprint::of(&MachineConfig::powerpc601_node(1));
    assert!(
        (f.bytes_per_node as u64) < f.simulated_cache_bytes_per_node,
        "model ({} B) must undercut even the simulated cache capacity ({} B) — \
         and simulated DRAM contents cost nothing at all",
        f.bytes_per_node,
        f.simulated_cache_bytes_per_node
    );
}

/// §3: application descriptions "only have to be made once, after which
/// they can be used to evaluate a wide range of architectures" — one trace
/// set, many machines, no regeneration.
#[test]
fn one_description_many_architectures() {
    let nodes = 8;
    let traces = StochasticGenerator::new(app(nodes, 3_000), 3).generate();
    let mut predictions = Vec::new();
    for machine in [
        MachineConfig::t805_multicomputer(Topology::Ring(nodes)),
        MachineConfig::t805_multicomputer(Topology::Hypercube { dim: 3 }),
        MachineConfig::paragon(4, 2),
        MachineConfig::powerpc601_cluster(Topology::Ring(nodes), 1),
    ] {
        let r = HybridSim::new(machine.clone()).run(&traces);
        assert!(r.comm.all_done, "{} deadlocked", machine.name);
        predictions.push(r.predicted_time);
    }
    // The architectures genuinely differ — so must the predictions.
    predictions.dedup();
    assert!(predictions.len() >= 3, "machines should be distinguishable");
}

/// §3.3: "every invocation of a loop body is individually traced and leads
/// to recurring addresses of instruction fetches" — and those recurring
/// fetches are exactly what makes the I-cache model effective.
#[test]
fn loop_fetch_reuse_drives_icache_hits() {
    let traces = StochasticGenerator::new(app(1, 30_000), 8).generate();
    let machine = MachineConfig::powerpc601_node(1);
    let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
    let refs: Vec<&Trace> = traces.iter().collect();
    let r = sim.run(&refs);
    let l1i = &r.mem_stats.l1i[0];
    assert!(
        l1i.hit_rate() > 0.9,
        "loop-closed code should hit the I-cache: {:.3}",
        l1i.hit_rate()
    );
}

/// §4.3: "by only using the computational model and configuring it with
/// multiple processors, a shared memory multiprocessor can be simulated" —
/// and adding processors must increase throughput (up to bus saturation).
#[test]
fn shared_memory_mode_scales_until_the_bus_saturates() {
    let mk_trace = |node: u32, seed: u64| {
        let a = StochasticApp {
            nodes: 1,
            phases: 1,
            ops_per_phase: SizeDist::Fixed(8_000),
            pattern: CommPattern::None,
            ..StochasticApp::scientific(1)
        };
        let mut t = StochasticGenerator::new(a, seed)
            .generate()
            .trace(0)
            .clone();
        t.node = node;
        t.node = 0;
        t
    };
    let throughput = |cpus: usize| {
        let machine = MachineConfig::powerpc601_node(cpus);
        let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let traces: Vec<Trace> = (0..cpus as u32)
            .map(|c| mk_trace(c, c as u64 + 1))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = sim.run(&refs);
        let total: u64 = r.cpu_stats.iter().map(|s| s.ops.total).sum();
        total as f64 / r.finish.as_secs_f64()
    };
    let t1 = throughput(1);
    let t4 = throughput(4);
    assert!(
        t4 > 1.5 * t1,
        "four CPUs should beat one: {t4:.0} vs {t1:.0} ops/s"
    );
}
