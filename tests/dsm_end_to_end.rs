//! End-to-end tests of the virtual-shared-memory layer through the full
//! simulation stack: DSM program → annotation translation → hybrid
//! simulation with one-sided network operations.

use mermaid::prelude::*;
use mermaid_dsm::programs::{dsm_jacobi1d, dsm_matmul};
use mermaid_dsm::DsmConfig;
use mermaid_tracegen::annotate::TargetLayout;
use mermaid_tracegen::InterleavedTraceGen;

fn dsm_traces(
    nodes: u32,
    page_bytes: u32,
    f: impl Fn(&mut mermaid_tracegen::NodeCtx, DsmConfig) + Send + Clone + 'static,
) -> TraceSet {
    InterleavedTraceGen::spawn(nodes, TargetLayout::default(), move |ctx| {
        f(ctx, DsmConfig { nodes, page_bytes })
    })
    .collect_all()
}

#[test]
fn dsm_matmul_simulates_without_deadlock() {
    let traces = dsm_traces(4, 1024, |ctx, cfg| dsm_matmul(ctx, cfg, 16));
    for topo in [Topology::Ring(4), Topology::FullyConnected(4)] {
        let machine = MachineConfig::t805_multicomputer(topo);
        let r = HybridSim::new(machine).run(&traces);
        assert!(r.comm.all_done, "deadlocked: {:?}", r.comm.deadlocked);
        // One-sided traffic reached the network.
        let gets_served: u64 = r.comm.nodes.iter().map(|n| n.proc.gets_served).sum();
        assert!(gets_served > 0);
    }
}

#[test]
fn dsm_jacobi_scales_like_its_message_passing_twin() {
    // Both formulations of the same stencil must agree on the qualitative
    // behaviour: more iterations → proportionally more time.
    let machine = MachineConfig::test_machine(Topology::Ring(4));
    let time_for = |iters: u32| {
        let traces = dsm_traces(4, 1024, move |ctx, cfg| dsm_jacobi1d(ctx, cfg, 256, iters));
        HybridSim::new(machine.clone())
            .run(&traces)
            .predicted_time
            .as_ps()
    };
    let t2 = time_for(2);
    let t8 = time_for(8);
    let ratio = t8 as f64 / t2 as f64;
    assert!(
        (2.5..6.0).contains(&ratio),
        "8 iterations should cost ≈4× of 2 (got {ratio:.2})"
    );
}

#[test]
fn larger_pages_reduce_faults_but_move_more_data() {
    let run = |page_bytes: u32| {
        let traces = dsm_traces(4, page_bytes, |ctx, cfg| dsm_matmul(ctx, cfg, 16));
        let s = traces.stats();
        (s.gets, s.bytes_fetched)
    };
    let (faults_small, bytes_small) = run(256);
    let (faults_large, bytes_large) = run(8192);
    assert!(faults_large < faults_small);
    assert!(bytes_large > bytes_small);
}

#[test]
fn dsm_get_latency_depends_on_the_network() {
    let traces = dsm_traces(4, 1024, |ctx, cfg| dsm_matmul(ctx, cfg, 12));
    let slow = MachineConfig::t805_multicomputer(Topology::Ring(4));
    let mut fast = slow.clone();
    fast.network = mermaid_network::NetworkConfig::hw_routed(Topology::Ring(4));
    let r_slow = HybridSim::new(slow).run(&traces);
    let r_fast = HybridSim::new(fast).run(&traces);
    assert!(r_fast.predicted_time < r_slow.predicted_time);
    let p99 = |r: &mermaid::HybridResult| {
        r.comm
            .nodes
            .iter()
            .filter_map(|n| n.proc.get_latency.percentile(99.0))
            .max()
            .unwrap()
    };
    assert!(p99(&r_fast) < p99(&r_slow));
}
