//! Experiment V1: consistency between the workbench's abstraction levels.
//!
//! The paper validates its detailed mode against real hardware (reference
//! [10]); the task-level mode was not yet validated. Here we validate the
//! levels against each other: replaying the hybrid mode's *measured* task
//! traces through the task-level simulator must reproduce the hybrid
//! prediction exactly, and synthetic task-level runs must land in the same
//! regime when their task durations match the measured ones.

use mermaid::prelude::*;
use mermaid::TaskLevelSim;

fn traces(nodes: u32, seed: u64, pattern: CommPattern) -> TraceSet {
    let app = StochasticApp {
        phases: 5,
        ops_per_phase: SizeDist::Uniform(1_000, 3_000),
        pattern,
        msg_bytes: SizeDist::Fixed(4096),
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, seed).generate()
}

#[test]
fn replaying_measured_tasks_reproduces_the_hybrid_prediction() {
    for (nodes, topo) in [
        (4u32, Topology::Ring(4)),
        (8, Topology::Hypercube { dim: 3 }),
        (6, Topology::Mesh2D { w: 3, h: 2 }),
    ] {
        let machine = MachineConfig::t805_multicomputer(topo);
        let ts = traces(nodes, 31, CommPattern::NearestNeighborRing);
        let hybrid = HybridSim::new(machine.clone()).run(&ts);
        assert!(hybrid.comm.all_done);
        let replay = TaskLevelSim::new(machine.network).run(&hybrid.task_traces);
        assert_eq!(
            replay.predicted_time,
            hybrid.predicted_time,
            "task-level replay must be exact on {}",
            topo.label()
        );
        assert_eq!(replay.comm.total_messages, hybrid.comm.total_messages);
    }
}

#[test]
fn both_modes_rank_architectures_identically() {
    // The fast mode's raison d'être: it must *rank* design alternatives the
    // same way the detailed mode does, even if absolute numbers differ.
    let ts = traces(8, 32, CommPattern::AllToAll);
    let mut detailed = Vec::new();
    let mut fast = Vec::new();
    for topo in [
        Topology::Ring(8),
        Topology::Hypercube { dim: 3 },
        Topology::FullyConnected(8),
    ] {
        let machine = MachineConfig::t805_multicomputer(topo);
        let h = HybridSim::new(machine.clone()).run(&ts);
        detailed.push((topo.label(), h.predicted_time));
        let replay = TaskLevelSim::new(machine.network).run(&h.task_traces);
        fast.push((topo.label(), replay.predicted_time));
    }
    let order = |v: &[(String, pearl::Time)]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by_key(|&i| v[i].1);
        idx
    };
    assert_eq!(order(&detailed), order(&fast));
}

#[test]
fn hybrid_prediction_dominates_pure_compute_time() {
    // Sanity bound: total predicted time ≥ the busiest node's compute time,
    // and ≥ the time any single message needs to cross the network.
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
    let ts = traces(4, 33, CommPattern::NearestNeighborRing);
    let r = HybridSim::new(machine).run(&ts);
    let max_compute = r.nodes.iter().map(|n| n.compute_total).max().unwrap();
    assert!(r.predicted_time >= pearl::Time::ZERO + max_compute);
}

#[test]
fn detailed_mode_sees_cache_pressure_that_task_level_cannot() {
    // Same communication structure, two working sets: only the detailed
    // mode's prediction responds to the cache-hostile one.
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
    let small_ws = StochasticApp {
        phases: 3,
        ops_per_phase: SizeDist::Fixed(2_000),
        working_set: 2 * 1024, // fits the 4 KiB on-chip RAM
        pattern: CommPattern::NearestNeighborRing,
        ..StochasticApp::scientific(4)
    };
    let large_ws = StochasticApp {
        working_set: 1024 * 1024, // blows it
        ..small_ws
    };
    let fast =
        HybridSim::new(machine.clone()).run(&StochasticGenerator::new(small_ws, 9).generate());
    let slow = HybridSim::new(machine).run(&StochasticGenerator::new(large_ws, 9).generate());
    assert!(
        slow.predicted_time > fast.predicted_time,
        "cache-hostile working set must cost time: {} vs {}",
        slow.predicted_time,
        fast.predicted_time
    );
}
