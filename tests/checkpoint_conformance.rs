//! Conformance suite for the checkpoint/restore contract (DESIGN.md §16).
//!
//! The contract under test: a run checkpointed at instant T and restored
//! produces **byte-identical** CLI output to the uninterrupted run —
//! across topology shapes, communication patterns, healthy and faulty
//! schedules, and serial vs `--shards 3` execution. Snapshot *files* are
//! mode-independent too: a sharded capture composes its per-shard pieces
//! (DESIGN.md §15 contiguous slices) into exactly the bytes a serial
//! capture writes.
//!
//! The golden snapshot fixture follows the `tests/golden_cli.rs`
//! convention: `BLESS=1 cargo test --test checkpoint_conformance`
//! regenerates it after intentional format changes.

use std::path::{Path, PathBuf};

use mermaid::cli::run;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mermaid-ckpt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Base args of one task-mode run in the conformance matrix.
fn base_args(topo: &str, pattern: &str, faults: Option<&str>) -> Vec<String> {
    let mut v = s(&[
        "sim",
        "--machine",
        "test",
        "--topology",
        topo,
        "--mode",
        "task",
        "--phases",
        "2",
        "--ops",
        "500",
        "--pattern",
        pattern,
    ]);
    if let Some(f) = faults {
        v.extend(s(&["--faults", f, "--fault-seed", "9"]));
    }
    v
}

/// Run a capture pass: the base run plus `--checkpoint-every`/`-dir`
/// (and optionally `--shards 3`), returning the snapshot files written,
/// in capture order (the zero-padded names sort chronologically).
fn capture(base: &[String], dir: &Path, sharded: bool) -> Vec<PathBuf> {
    let mut args = base.to_vec();
    args.extend(s(&[
        "--checkpoint-every",
        "200000",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]));
    if sharded {
        args.extend(s(&["--shards", "3"]));
    }
    let out = run(&args).unwrap();
    assert!(out.contains("checkpoints written:"), "{out}");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no checkpoint written for {base:?} — cadence too coarse for the run"
    );
    files
}

fn restore(base: &[String], snap: &Path, shards: Option<&str>) -> String {
    let mut args = base.to_vec();
    args.extend(s(&["--restore", snap.to_str().unwrap()]));
    if let Some(n) = shards {
        args.extend(s(&["--shards", n]));
    }
    run(&args).unwrap()
}

/// The conformance matrix: every topology shape × three communication
/// patterns, restored mid-run both serially and on 3 shards, must
/// reproduce the uninterrupted run's stdout byte for byte.
#[test]
fn restored_runs_are_byte_identical_across_the_matrix() {
    let topos = ["ring:8", "mesh:4x2", "torus:4x2", "hypercube:3"];
    let patterns = ["ring", "all2all", "butterfly"];
    for topo in topos {
        for pattern in patterns {
            let base = base_args(topo, pattern, None);
            let straight = run(&base).unwrap();
            let dir = temp_dir(&format!("m-{}-{pattern}", topo.replace(':', "_")));
            let snaps = capture(&base, &dir, false);
            // The middle checkpoint: far from both the warm-up and the
            // drain, where pending-event state is at its richest.
            let mid = &snaps[snaps.len() / 2];
            assert_eq!(
                straight,
                restore(&base, mid, None),
                "{topo} × {pattern}: serial restore diverged"
            );
            assert_eq!(
                straight,
                restore(&base, mid, Some("3")),
                "{topo} × {pattern}: sharded restore diverged"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Faulty runs — a healing link outage plus transient loss, and a
/// permanent cut — restore byte-identically too: Outstanding retry
/// state, fault status, and delivery accounting all live in the
/// snapshot.
#[test]
fn faulty_runs_restore_byte_identically() {
    for (topo, pattern, faults) in [
        ("ring:8", "ring", "link:0-1:2000:400000; drop:20000"),
        ("torus:4x2", "all2all", "link:0-1:0; corrupt:10000"),
    ] {
        let base = base_args(topo, pattern, Some(faults));
        let straight = run(&base).unwrap();
        assert!(straight.contains("fault injection:"), "{straight}");
        let dir = temp_dir(&format!("f-{}", topo.replace(':', "_")));
        let snaps = capture(&base, &dir, false);
        let mid = &snaps[snaps.len() / 2];
        assert_eq!(straight, restore(&base, mid, None), "{topo} faulty serial");
        assert_eq!(
            straight,
            restore(&base, mid, Some("3")),
            "{topo} faulty sharded"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Snapshot files are execution-mode-independent: a `--shards 3` capture
/// writes byte-identical files (same names, same contents) to the serial
/// capture of the same run — healthy and faulty alike.
#[test]
fn serial_and_sharded_captures_write_identical_snapshot_files() {
    for faults in [None, Some("link:0-1:2000:400000; drop:20000")] {
        let base = base_args("torus:4x2", "all2all", faults);
        let (d1, d3) = (
            temp_dir(&format!("cap1-{}", faults.is_some())),
            temp_dir(&format!("cap3-{}", faults.is_some())),
        );
        let serial = capture(&base, &d1, false);
        let sharded = capture(&base, &d3, true);
        let names = |v: &[PathBuf]| -> Vec<String> {
            v.iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
                .collect()
        };
        assert_eq!(names(&serial), names(&sharded), "capture instants differ");
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(
                std::fs::read_to_string(a).unwrap(),
                std::fs::read_to_string(b).unwrap(),
                "{} differs between serial and sharded capture",
                a.file_name().unwrap().to_string_lossy()
            );
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d3).ok();
    }
}

/// Speculative windows are a scheduling policy, not a model change:
/// sharded restores under `--speculate on`, `off`, and a forced
/// threshold all reproduce the uninterrupted serial output byte for
/// byte — healthy and faulty alike — and a speculative sharded capture
/// writes the same snapshot files as a conservative serial one.
#[test]
fn speculative_sharded_runs_conform_byte_for_byte() {
    for faults in [None, Some("link:0-1:2000:400000; drop:20000")] {
        let base = base_args("torus:4x2", "all2all", faults);
        let straight = run(&base).unwrap();
        let dir = temp_dir(&format!("spec-{}", faults.is_some()));
        let snaps = capture(&base, &dir, false);
        let mid = &snaps[snaps.len() / 2];
        for policy in ["on", "off", "1000000000"] {
            let mut args = base.clone();
            args.extend(s(&[
                "--restore",
                mid.to_str().unwrap(),
                "--shards",
                "3",
                "--speculate",
                policy,
            ]));
            assert_eq!(
                straight,
                run(&args).unwrap(),
                "--speculate {policy} restore diverged (faults: {faults:?})"
            );
        }

        // Capture pass under forced speculation: instants and bytes must
        // match the conservative serial capture exactly.
        let d2 = temp_dir(&format!("spec-cap-{}", faults.is_some()));
        let mut cap = base.clone();
        cap.extend(s(&[
            "--checkpoint-every",
            "200000",
            "--checkpoint-dir",
            d2.to_str().unwrap(),
            "--shards",
            "3",
            "--speculate",
            "1000000000",
        ]));
        run(&cap).unwrap();
        let mut spec_files: Vec<PathBuf> = std::fs::read_dir(&d2)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .collect();
        spec_files.sort();
        let names = |v: &[PathBuf]| -> Vec<String> {
            v.iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
                .collect()
        };
        assert_eq!(names(&snaps), names(&spec_files), "capture instants differ");
        for (a, b) in snaps.iter().zip(&spec_files) {
            assert_eq!(
                std::fs::read_to_string(a).unwrap(),
                std::fs::read_to_string(b).unwrap(),
                "{} differs between conservative and speculative capture",
                a.file_name().unwrap().to_string_lossy()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}

/// Attribution state rides in the snapshot: a restored run's
/// `attribution.json` is byte-identical to the uninterrupted run's.
#[test]
fn restored_attribution_json_is_byte_identical() {
    let dir = temp_dir("attr");
    let json = |tag: &str| dir.join(format!("{tag}.json"));
    let base = base_args("torus:4x2", "all2all", None);

    let mut straight_args = base.clone();
    straight_args.extend(s(&["--attribution", json("straight").to_str().unwrap()]));
    run(&straight_args).unwrap();

    let mut cap_args = base.clone();
    cap_args.extend(s(&[
        "--attribution",
        json("capture").to_str().unwrap(),
        "--checkpoint-every",
        "200000",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]));
    run(&cap_args).unwrap();
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    let mid = snaps[snaps.len() / 2].clone();

    for (tag, shards) in [("serial", None), ("sharded", Some("3"))] {
        let mut args = base.clone();
        args.extend(s(&["--attribution", json(tag).to_str().unwrap()]));
        args.extend(s(&["--restore", mid.to_str().unwrap()]));
        if let Some(n) = shards {
            args.extend(s(&["--shards", n]));
        }
        run(&args).unwrap();
        assert_eq!(
            std::fs::read_to_string(json("straight")).unwrap(),
            std::fs::read_to_string(json(tag)).unwrap(),
            "attribution.json diverged after a {tag} restore"
        );
    }
    // The capture run's own attribution matches too — checkpointing only
    // observes.
    assert_eq!(
        std::fs::read_to_string(json("straight")).unwrap(),
        std::fs::read_to_string(json("capture")).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot captured *with* attribution restores fine into a run
/// without it; the reverse is refused with an actionable error.
#[test]
fn attribution_snapshot_compatibility_is_one_way() {
    let dir = temp_dir("attr-compat");
    let base = base_args("ring:8", "ring", None);
    let mut cap = base.clone();
    cap.extend(s(&[
        "--checkpoint-every",
        "200000",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]));
    run(&cap).unwrap();
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .min()
        .unwrap();
    // No attr record in the snapshot + an attribution run = refusal.
    let mut args = base.clone();
    args.extend(s(&[
        "--restore",
        snap.to_str().unwrap(),
        "--attribution",
        dir.join("a.json").to_str().unwrap(),
    ]));
    let err = run(&args).unwrap_err();
    assert!(err.contains("no `attr` record"), "{err}");
    assert!(err.contains("re-create the checkpoint"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn and truncated snapshot files are detected and refused — never
/// silently restored.
#[test]
fn torn_snapshots_are_detected_never_restored() {
    let dir = temp_dir("torn");
    let base = base_args("ring:8", "ring", None);
    let mut cap = base.clone();
    cap.extend(s(&[
        "--checkpoint-every",
        "200000",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]));
    run(&cap).unwrap();
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .min()
        .unwrap();
    let text = std::fs::read_to_string(&snap).unwrap();

    // Cut the body anywhere: the FNV body hash in the header no longer
    // matches and the restore is refused with the torn-file diagnostic.
    let torn = dir.join("torn.snap");
    std::fs::write(&torn, &text[..text.len() - 20]).unwrap();
    let mut args = base.clone();
    args.extend(s(&["--restore", torn.to_str().unwrap()]));
    let err = run(&args).unwrap_err();
    assert!(err.contains("torn or truncated"), "{err}");

    // Truncating into the header fails the magic/field checks instead.
    std::fs::write(&torn, &text[..12]).unwrap();
    assert!(run(&args).is_err());

    // An empty file is refused too.
    std::fs::write(&torn, "").unwrap();
    let err = run(&args).unwrap_err();
    assert!(err.contains("not a mermaid snapshot"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden fixture of a complete snapshot file for a pinned tiny run: the
/// on-disk format — header fields, record layout, integer encodings,
/// body hash — is a persistence contract (DESIGN.md §16). Any drift must
/// bump `schema=` and be blessed deliberately.
#[test]
fn golden_snapshot_fixture() {
    let dir = temp_dir("golden");
    let args = s(&[
        "sim",
        "--machine",
        "test",
        "--topology",
        "ring:4",
        "--mode",
        "task",
        "--phases",
        "1",
        "--ops",
        "300",
        "--checkpoint-every",
        "200000",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    run(&args).unwrap();
    let first = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .min()
        .expect("a checkpoint was written");
    let got = std::fs::read_to_string(&first).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Header shape: magic, schema, config hash, nodes, instant, body hash.
    let header = got.lines().next().unwrap();
    assert!(
        header.starts_with("mermaid-snapshot-v1 schema=1 config="),
        "{header}"
    );
    assert!(header.contains("nodes=4"), "{header}");
    assert!(header.contains("time=200000"), "{header}");
    assert!(got.trim_end().ends_with("end"), "missing end marker");

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/snapshot_ring4.snap");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — run `BLESS=1 cargo test --test checkpoint_conformance`",
            golden.display()
        )
    });
    assert_eq!(
        got, want,
        "snapshot format drifted — if intentional, bump SNAPSHOT_SCHEMA, regenerate with \
         `BLESS=1 cargo test --test checkpoint_conformance`, and document it in DESIGN.md §16"
    );
}
