//! Property-based tests over the workbench's core invariants.
//!
//! ## Regression files
//!
//! Upstream proptest persists failing seeds to
//! `tests/proptests.proptest-regressions` and replays them before new
//! cases. The **vendored** stand-in (`vendor/proptest`) does not: it has
//! no shrinking and ignores regression files entirely; its RNG stream is
//! seeded deterministically from each test's name, so a failure
//! reproduces by simply re-running the same test. When a property fails,
//! the panic message reports the raw inputs — pin them as an ordinary
//! `#[test]` if they are worth keeping, and optionally record the shrunk
//! form in the regressions file for the day the real crate returns.

use proptest::prelude::*;

use mermaid_memory::{Access, MemSystemConfig, MemorySystem};
use mermaid_network::Topology;
use mermaid_ops::{codec, text, ArithOp, DataType, Operation, Trace};
use pearl::{EventQueue, Time};

/// Strategy for one arbitrary operation.
fn op_strategy() -> impl Strategy<Value = Operation> {
    let ty = prop_oneof![
        Just(DataType::I8),
        Just(DataType::I16),
        Just(DataType::I32),
        Just(DataType::I64),
        Just(DataType::F32),
        Just(DataType::F64),
    ];
    let arith = prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
    ];
    prop_oneof![
        (ty.clone(), any::<u64>()).prop_map(|(ty, addr)| Operation::Load { ty, addr }),
        (ty.clone(), any::<u64>()).prop_map(|(ty, addr)| Operation::Store { ty, addr }),
        ty.clone().prop_map(|ty| Operation::LoadConst { ty }),
        (arith, ty).prop_map(|(op, ty)| Operation::Arith { op, ty }),
        any::<u64>().prop_map(|addr| Operation::IFetch { addr }),
        any::<u64>().prop_map(|addr| Operation::Branch { addr }),
        any::<u64>().prop_map(|addr| Operation::Call { addr }),
        any::<u64>().prop_map(|addr| Operation::Ret { addr }),
        (any::<u32>(), 0u32..64).prop_map(|(bytes, dst)| Operation::Send { bytes, dst }),
        (0u32..64).prop_map(|src| Operation::Recv { src }),
        (any::<u32>(), 0u32..64).prop_map(|(bytes, dst)| Operation::ASend { bytes, dst }),
        (0u32..64).prop_map(|src| Operation::ARecv { src }),
        any::<u64>().prop_map(|ps| Operation::Compute { ps }),
    ]
}

proptest! {
    /// Binary codec: decode(encode(x)) == x for arbitrary traces.
    #[test]
    fn binary_codec_roundtrips(ops in prop::collection::vec(op_strategy(), 0..200), node in 0u32..1024) {
        let trace = Trace::from_ops(node, ops);
        let encoded = codec::encode_trace(&trace);
        let decoded = codec::decode_trace(encoded).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    /// Text codec: parse(format(x)) == x for arbitrary traces.
    #[test]
    fn text_codec_roundtrips(ops in prop::collection::vec(op_strategy(), 0..100)) {
        let trace = Trace::from_ops(0, ops);
        let rendered = text::format_trace(&trace);
        let parsed = text::parse_trace(0, &rendered).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Splitting a trace at global events loses nothing and keeps order.
    #[test]
    fn trace_splitting_partitions_exactly(ops in prop::collection::vec(op_strategy(), 0..150)) {
        let trace = Trace::from_ops(0, ops.clone());
        let segments = trace.split_at_global_events();
        let mut rebuilt = Vec::new();
        for seg in &segments {
            rebuilt.extend_from_slice(seg.computation);
            if let Some(c) = seg.comm {
                rebuilt.push(c);
            }
        }
        prop_assert_eq!(rebuilt, ops);
        // Every terminator is a global event; no segment body contains one.
        for seg in &segments {
            prop_assert!(seg.computation.iter().all(|o| !o.is_global_event()));
            if let Some(c) = seg.comm {
                prop_assert!(c.is_global_event());
            }
        }
    }

    /// The event queue is a stable priority queue: pops are sorted by time,
    /// FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ps(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO order violated at equal times");
            }
        }
    }

    /// Random access interleavings never violate the MESI single-owner
    /// invariant, and the caches never hold more valid lines than capacity.
    #[test]
    fn coherence_invariant_under_random_access(
        accesses in prop::collection::vec(
            (0usize..4, 0u8..3, 0u64..64, 1u64..1000), 1..300
        )
    ) {
        let mut sys = MemorySystem::new(MemSystemConfig::small(4));
        let mut now = Time::ZERO;
        // A small set of hot lines so CPUs genuinely share data.
        for (cpu, kind, slot, dt) in accesses {
            let kind = match kind {
                0 => Access::Read,
                1 => Access::Write,
                _ => Access::IFetch,
            };
            let addr = 0x1000 + slot * 8;
            now += pearl::Duration::from_ps(dt);
            let r = sys.access(cpu, kind, addr, 4, now);
            now += r.latency;
            sys.check_coherence(addr);
        }
        // Spot-check the whole hot range at the end.
        for slot in 0..64u64 {
            sys.check_coherence(0x1000 + slot * 8);
        }
    }

    /// Deterministic minimal routing reaches every destination within the
    /// topology's diameter, on arbitrary valid topologies.
    #[test]
    fn routing_always_terminates(kind in 0u8..6, size in 2u32..17, src_raw in 0u32..1000, dst_raw in 0u32..1000) {
        let topo = match kind {
            0 => Topology::Ring(size),
            1 => Topology::Mesh2D { w: size, h: 3 },
            2 => Topology::Torus2D { w: size, h: 4 },
            3 => Topology::Hypercube { dim: 1 + size % 6 },
            4 => Topology::FullyConnected(size),
            _ => Topology::Star(size),
        };
        let n = topo.nodes();
        let src = src_raw % n;
        let dst = dst_raw % n;
        prop_assume!(src != dst);
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            cur = topo.route_next(cur, dst);
            hops += 1;
            prop_assert!(hops <= topo.diameter(), "route exceeded diameter");
        }
        prop_assert_eq!(hops, topo.distance(src, dst));
    }

    /// RFC-4180 CSV round trip: `parse_line` inverts `csv_line` for
    /// arbitrary fields, including ones holding commas, quotes, CR, and LF
    /// — the characters whose mishandling silently corrupts rows (campaign
    /// summaries embed fault specs and machine names in CSV cells).
    #[test]
    fn csv_line_roundtrips_through_parse_line(
        raw in prop::collection::vec(prop::collection::vec(0usize..10, 0..24), 1..6)
    ) {
        use mermaid_stats::csv::{csv_field, csv_line, parse_line};
        const ALPHABET: [char; 10] = [',', '"', '\r', '\n', 'a', 'B', ' ', 'é', '7', ':'];
        let fields: Vec<String> = raw
            .iter()
            .map(|ixs| ixs.iter().map(|&i| ALPHABET[i]).collect())
            .collect();
        let line = csv_line(&fields);
        prop_assert!(line.ends_with('\n'));
        let parsed = parse_line(&line[..line.len() - 1])
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&parsed, &fields);
        // Field-level identity too: each quoted field alone is one field.
        for f in &fields {
            let back = parse_line(&csv_field(f)).map_err(TestCaseError::fail)?;
            prop_assert_eq!(&back, &vec![f.clone()]);
        }
    }

    /// Statistics category counts always partition the total.
    #[test]
    fn stats_categories_partition(ops in prop::collection::vec(op_strategy(), 0..300)) {
        use mermaid_ops::{OpCategory, TraceStats};
        let stats = TraceStats::from_ops(ops.iter().copied());
        let sum: u64 = OpCategory::ALL.iter().map(|&c| stats.category(c)).sum();
        prop_assert_eq!(sum, stats.total);
        prop_assert_eq!(stats.total, ops.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault schedules over random balanced traffic never panic or
    /// deadlock the communication model, and the reliability protocol
    /// conserves messages: once drained, every tracked message was either
    /// acknowledged or reported failed — none vanish.
    #[test]
    fn random_fault_schedules_never_deadlock_and_conserve_messages(
        topo_kind in 0u8..4,
        fault_seed in 0u64..1_000,
        n_faults in 0usize..5,
        drop_ppm in 0u32..60_000,
        corrupt_ppm in 0u32..30_000,
        pairs in prop::collection::vec((0u32..8, 0u32..8, 64u32..8_192), 1..20)
    ) {
        use std::sync::Arc;
        use mermaid_network::{CommSim, FaultSchedule, NetworkConfig, RetryParams};
        use mermaid_ops::TraceSet;
        use pearl::Time;

        let topo = match topo_kind {
            0 => Topology::Ring(8),
            1 => Topology::Mesh2D { w: 4, h: 2 },
            2 => Topology::Torus2D { w: 4, h: 2 },
            _ => Topology::Hypercube { dim: 3 },
        };
        let cfg = NetworkConfig::test(topo);

        // Balanced async traffic: sends first, then the matching receives.
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes) in &pairs {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &pairs {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }

        // A random-but-seeded schedule: scripted link outages drawn from
        // the topology plus background loss and corruption.
        let faults = Arc::new(
            FaultSchedule::new(fault_seed)
                .with_retry(RetryParams::default_for(&cfg))
                .with_drop_ppm(drop_ppm)
                .with_corrupt_ppm(corrupt_ppm)
                .random_link_faults(&topo, n_faults, Time::from_us(300)),
        );

        let r = CommSim::new_with_faults(cfg, &ts, mermaid_probe::ProbeHandle::disabled(), faults)
            .run();

        // Degraded or not, the run must complete: the watchdogs turn any
        // starved receive into a timeout instead of a deadlock.
        prop_assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);

        // Conservation, globally and per sender.
        let d = r.delivery();
        prop_assert!(d.conserved(), "tracked={} acked={} failed={}", d.tracked, d.acked, d.failed);
        prop_assert_eq!(d.tracked as usize, pairs.len());
        for nc in &r.nodes {
            prop_assert_eq!(
                nc.proc.msgs_tracked,
                nc.proc.msgs_acked + nc.proc.msgs_failed,
                "node {} leaked a tracked message", nc.node
            );
        }
        // Every failure is matched by a structured report.
        prop_assert_eq!(r.unreachable.len() as u64, r.msgs_failed);
        // Deliveries + failures account for every message sent.
        prop_assert_eq!(r.total_messages + r.msgs_failed, pairs.len() as u64);
    }

    /// The latency decomposition is conservative on arbitrary balanced
    /// traffic under arbitrary fault pressure: every `msg_path` record's
    /// six components (overhead, retry, queue, routing, serialization,
    /// wire) sum to its end-to-end latency exactly, and one record is
    /// emitted per delivered message.
    #[test]
    fn latency_decomposition_conserves(
        topo_kind in 0u8..4,
        drop_ppm in 0u32..40_000,
        pairs in prop::collection::vec((0u32..8, 0u32..8, 64u32..8_192), 1..20)
    ) {
        use std::sync::Arc;
        use mermaid_network::{CommSim, FaultSchedule, NetworkConfig, RetryParams};
        use mermaid_ops::TraceSet;
        use mermaid_probe::{ProbeHandle, ProbeStack, SimEvent};

        let topo = match topo_kind {
            0 => Topology::Ring(8),
            1 => Topology::Mesh2D { w: 4, h: 2 },
            2 => Topology::Torus2D { w: 4, h: 2 },
            _ => Topology::Hypercube { dim: 3 },
        };
        let cfg = NetworkConfig::test(topo);
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes) in &pairs {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &pairs {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let faults = Arc::new(
            FaultSchedule::new(drop_ppm as u64)
                .with_retry(RetryParams::default_for(&cfg))
                .with_drop_ppm(drop_ppm),
        );
        let probe = ProbeHandle::new(ProbeStack::new().with_buffer());
        let r = CommSim::new_with_faults(cfg, &ts, probe.clone(), faults).run();
        prop_assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);

        let mut paths = 0u64;
        for ev in probe.take_buffer().unwrap() {
            if let SimEvent::MsgPath {
                latency_ps, overhead_ps, retry_ps, queue_ps,
                routing_ps, ser_ps, wire_ps, src, dst, ..
            } = ev {
                paths += 1;
                prop_assert_eq!(
                    overhead_ps + retry_ps + queue_ps + routing_ps + ser_ps + wire_ps,
                    latency_ps,
                    "{}->{} leaves a residual", src, dst
                );
            }
        }
        prop_assert_eq!(paths, r.total_messages);
    }

    /// Arbitrary balanced communication patterns never deadlock the
    /// communication model (async sends + matching blocking receives).
    #[test]
    fn balanced_async_patterns_never_deadlock(
        pairs in prop::collection::vec((0u32..6, 0u32..6, 1u32..10_000), 1..40)
    ) {
        use mermaid_network::{CommSim, NetworkConfig};
        use mermaid_ops::TraceSet;
        let n = 6u32;
        let mut ts = TraceSet::new(n as usize);
        // Sends first (async), then receives in the same global order —
        // always satisfiable.
        for &(src, dst, bytes) in &pairs {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &pairs {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let r = CommSim::new(NetworkConfig::test(Topology::Hypercube { dim: 3 }), &{
            // Hypercube(3) has 8 nodes; extend the trace set.
            let mut big = TraceSet::new(8);
            for node in 0..n {
                *big.trace_mut(node) = ts.trace(node).clone();
            }
            big
        })
        .run();
        prop_assert!(r.all_done, "deadlocked: {:?}", r.deadlocked);
        prop_assert_eq!(r.total_messages, pairs.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint/restore invariance (DESIGN.md §16): for a random
    /// (topology, traffic, fault schedule, checkpoint instant, restore
    /// shard count), the restored run conserves messages and reproduces
    /// the uninterrupted run's results — finish time, event count,
    /// delivery accounting, and per-node counters — exactly.
    #[test]
    fn restored_runs_match_uninterrupted_runs(
        topo_kind in 0u8..4,
        fault_seed in 0u64..1_000,
        drop_ppm in prop_oneof![Just(0u32), 1u32..50_000],
        pick_raw in 0usize..64,
        restore_shards in prop_oneof![Just(1usize), Just(3usize)],
        pairs in prop::collection::vec((0u32..8, 0u32..8, 64u32..8_192), 1..20)
    ) {
        use std::sync::{Arc, Mutex};
        use mermaid_network::{
            run_checkpointed, CheckpointOpts, FaultSchedule, NetworkConfig, RetryParams,
            Snapshot,
        };
        use mermaid_ops::TraceSet;
        use mermaid_probe::ProbeHandle;
        use pearl::Duration;

        let topo = match topo_kind {
            0 => Topology::Ring(8),
            1 => Topology::Mesh2D { w: 4, h: 2 },
            2 => Topology::Torus2D { w: 4, h: 2 },
            _ => Topology::Hypercube { dim: 3 },
        };
        let cfg = NetworkConfig::test(topo);
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes) in &pairs {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &pairs {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let faults = (drop_ppm > 0).then(|| {
            Arc::new(
                FaultSchedule::new(fault_seed)
                    .with_retry(RetryParams::default_for(&cfg))
                    .with_drop_ppm(drop_ppm),
            )
        });

        let (straight, _) = run_checkpointed(
            cfg, &ts, ProbeHandle::disabled(), 1, faults.clone(), None, None,
        )
        .unwrap();
        prop_assert!(straight.all_done, "deadlocked: {:?}", straight.deadlocked);

        // Capture at a cadence that lands ~4 checkpoints inside the run.
        let snaps: Mutex<Vec<Snapshot>> = Mutex::new(Vec::new());
        let keep = |s: &Snapshot| {
            snaps.lock().unwrap().push(s.clone());
            Ok(())
        };
        let ck = CheckpointOpts {
            every: Duration::from_ps((straight.finish.as_ps() / 4).max(1)),
            config_hash: "prop".into(),
            write: &keep,
        };
        run_checkpointed(
            cfg, &ts, ProbeHandle::disabled(), 1, faults.clone(), None, Some(&ck),
        )
        .unwrap();
        let snaps = snaps.into_inner().unwrap();
        prop_assert!(!snaps.is_empty(), "cadence produced no checkpoint");
        let snap = &snaps[pick_raw % snaps.len()];

        let (restored, _) = run_checkpointed(
            cfg, &ts, ProbeHandle::disabled(), restore_shards, faults, Some(snap), None,
        )
        .unwrap();
        prop_assert_eq!(restored.finish, straight.finish);
        prop_assert_eq!(restored.all_done, straight.all_done);
        prop_assert_eq!(restored.events, straight.events);
        prop_assert_eq!(restored.total_messages, straight.total_messages);
        prop_assert_eq!(restored.total_bytes, straight.total_bytes);
        prop_assert_eq!(restored.unreachable.len(), straight.unreachable.len());

        // Message conservation holds through the splice, globally and per
        // node.
        let (ds, dr) = (straight.delivery(), restored.delivery());
        prop_assert!(dr.conserved(), "tracked={} acked={} failed={}", dr.tracked, dr.acked, dr.failed);
        prop_assert_eq!(dr.tracked, ds.tracked);
        prop_assert_eq!(dr.acked, ds.acked);
        prop_assert_eq!(dr.failed, ds.failed);
        for (a, b) in straight.nodes.iter().zip(&restored.nodes) {
            prop_assert_eq!(a.proc.msgs_tracked, b.proc.msgs_tracked, "node {}", a.node);
            prop_assert_eq!(a.proc.msgs_acked, b.proc.msgs_acked, "node {}", a.node);
            prop_assert_eq!(a.proc.msgs_failed, b.proc.msgs_failed, "node {}", a.node);
        }
    }

    /// Torn, truncated, or bit-flipped snapshot files are always detected:
    /// any strict prefix of a snapshot fails to parse, as does any
    /// single-byte corruption of the body — a damaged checkpoint is never
    /// silently restored.
    #[test]
    fn damaged_snapshots_never_parse(
        topo_kind in 0u8..4,
        cut_raw in 0usize..100_000,
        flip_raw in 0usize..100_000,
        pairs in prop::collection::vec((0u32..8, 0u32..8, 64u32..4_096), 1..12)
    ) {
        use std::sync::Mutex;
        use mermaid_network::{run_checkpointed, CheckpointOpts, NetworkConfig, Snapshot};
        use mermaid_ops::TraceSet;
        use mermaid_probe::ProbeHandle;
        use pearl::Duration;

        let topo = match topo_kind {
            0 => Topology::Ring(8),
            1 => Topology::Mesh2D { w: 4, h: 2 },
            2 => Topology::Torus2D { w: 4, h: 2 },
            _ => Topology::Hypercube { dim: 3 },
        };
        let cfg = NetworkConfig::test(topo);
        let mut ts = TraceSet::new(8);
        for &(src, dst, bytes) in &pairs {
            ts.trace_mut(src).push(Operation::ASend { bytes, dst });
        }
        for &(src, dst, _) in &pairs {
            ts.trace_mut(dst).push(Operation::Recv { src });
        }
        let snaps: Mutex<Vec<Snapshot>> = Mutex::new(Vec::new());
        let keep = |s: &Snapshot| {
            snaps.lock().unwrap().push(s.clone());
            Ok(())
        };
        let ck = CheckpointOpts {
            every: Duration::from_ps(20_000),
            config_hash: "prop".into(),
            write: &keep,
        };
        run_checkpointed(cfg, &ts, ProbeHandle::disabled(), 1, None, None, Some(&ck)).unwrap();
        let snaps = snaps.into_inner().unwrap();
        prop_assume!(!snaps.is_empty());
        let text = snaps[cut_raw % snaps.len()].to_file_string();

        // The intact file round-trips (the format is ASCII, so byte
        // offsets below are valid slice points).
        prop_assert!(text.is_ascii());
        let reparsed = Snapshot::parse(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed.to_file_string(), text.clone());

        // Any strict prefix — a checkpoint killed mid-write — is refused.
        let cut = cut_raw % text.len();
        prop_assert!(
            Snapshot::parse(&text[..cut]).is_err(),
            "a snapshot truncated to {cut}/{} bytes parsed", text.len()
        );

        // Any single corrupted body byte trips the header's body hash.
        let body_start = text.find('\n').unwrap() + 1;
        let flip = body_start + flip_raw % (text.len() - body_start);
        let mut bytes = text.clone().into_bytes();
        bytes[flip] ^= 1;
        let corrupt = String::from_utf8(bytes).unwrap();
        prop_assert!(
            Snapshot::parse(&corrupt).is_err(),
            "a snapshot with byte {flip} flipped parsed"
        );
    }
}
