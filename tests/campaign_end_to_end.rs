//! End-to-end campaign runner tests: determinism, resume, and scale.
//!
//! The campaign contract (DESIGN.md §13) is that the recorded outputs are
//! a pure function of the spec: independent of worker count, of
//! kill/resume boundaries, and of the order runs happen to finish in.
//! These tests drive `mermaid::campaign` through real simulations and
//! compare the persisted artifacts byte-for-byte.
//!
//! The golden CSV snapshot follows the `tests/golden_cli.rs` convention:
//! `BLESS=1 cargo test --test campaign_end_to_end` regenerates it.

use std::path::{Path, PathBuf};

use mermaid::campaign::{
    capture_run_checkpoint, checkpoint_path, checkpoints_dir, load_records, run_campaign,
    CampaignOptions, CampaignSpec, CSV_FILE, RUNS_FILE,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mermaid-campaign-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts(dir: &Path, jobs: usize) -> CampaignOptions {
    CampaignOptions {
        out_dir: dir.to_path_buf(),
        jobs,
        limit: None,
        progress: false,
        attribution: false,
        checkpoint_every_ps: None,
    }
}

/// The JSONL stream sorted by line (completion order is nondeterministic
/// under parallel execution; content must not be).
fn sorted_jsonl(dir: &Path) -> Vec<String> {
    let data = std::fs::read_to_string(dir.join(RUNS_FILE)).unwrap();
    assert!(data.ends_with('\n'), "stream must end on a record boundary");
    let mut lines: Vec<String> = data.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

fn csv(dir: &Path) -> String {
    std::fs::read_to_string(dir.join(CSV_FILE)).unwrap()
}

/// The aggregated comparison table of a campaign report — the part that
/// must be identical across out dirs and resume histories (the headline
/// legitimately differs: it counts this invocation's new work).
fn report_table(report: &str) -> &str {
    let i = report
        .find("Campaign comparison")
        .expect("report has no comparison table");
    &report[i..]
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec::parse(
        "topo = ring:4, mesh:2x2; pattern = ring, all2all; phases = 1; ops = 300; seed = 1, 2",
    )
    .unwrap()
}

#[test]
fn same_spec_twice_is_byte_identical() {
    let spec = tiny_spec();
    let (a, b) = (temp_dir("twice-a"), temp_dir("twice-b"));
    let ra = run_campaign(&spec, &opts(&a, 4)).unwrap();
    let rb = run_campaign(&spec, &opts(&b, 4)).unwrap();
    assert_eq!(ra.executed, 8);
    assert_eq!(rb.executed, 8);
    assert_eq!(sorted_jsonl(&a), sorted_jsonl(&b));
    assert_eq!(csv(&a), csv(&b));
    assert_eq!(
        report_table(&ra.report),
        report_table(&rb.report),
        "aggregated report must match too"
    );
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let spec = tiny_spec();
    let (serial, parallel) = (temp_dir("ser"), temp_dir("par"));
    run_campaign(&spec, &opts(&serial, 1)).unwrap();
    run_campaign(&spec, &opts(&parallel, 8)).unwrap();
    assert_eq!(sorted_jsonl(&serial), sorted_jsonl(&parallel));
    assert_eq!(csv(&serial), csv(&parallel));
    std::fs::remove_dir_all(&serial).ok();
    std::fs::remove_dir_all(&parallel).ok();
}

#[test]
fn kill_and_resume_matches_an_uninterrupted_run() {
    let spec = tiny_spec();
    let fresh = temp_dir("fresh");
    run_campaign(&spec, &opts(&fresh, 2)).unwrap();

    // "Kill" the campaign twice by budgeting it to 3 new runs per
    // invocation; each restart re-expands and runs only the gap.
    let resumed = temp_dir("resumed");
    let mut o = opts(&resumed, 2);
    o.limit = Some(3);
    let first = run_campaign(&spec, &o).unwrap();
    assert_eq!((first.executed, first.pending), (3, 5));
    let second = run_campaign(&spec, &o).unwrap();
    assert_eq!(
        (second.recorded_before, second.executed, second.pending),
        (3, 3, 2)
    );
    o.limit = None;
    let last = run_campaign(&spec, &o).unwrap();
    assert_eq!(
        (last.recorded_before, last.executed, last.pending),
        (6, 2, 0)
    );

    assert_eq!(sorted_jsonl(&fresh), sorted_jsonl(&resumed));
    assert_eq!(csv(&fresh), csv(&resumed));
    let fresh_again = run_campaign(&spec, &opts(&fresh, 2)).unwrap();
    assert_eq!(
        report_table(&last.report),
        report_table(&fresh_again.report)
    );
    std::fs::remove_dir_all(&fresh).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn checkpointed_campaign_resumes_mid_run_byte_identically() {
    let spec = tiny_spec();
    let fresh = temp_dir("ckpt-fresh");
    run_campaign(&spec, &opts(&fresh, 2)).unwrap();

    // Simulate a campaign killed mid-run under `--checkpoint`: fabricate
    // the rolling snapshot one of the runs would have left behind, then
    // resume. The resumed campaign must finish that run from its
    // checkpoint and still produce byte-identical artifacts.
    let resumed = temp_dir("ckpt-resumed");
    let ckdir = checkpoints_dir(&resumed);
    std::fs::create_dir_all(&ckdir).unwrap();
    let victim = spec.expand().unwrap().remove(0);
    let snap = checkpoint_path(&resumed, &victim);
    capture_run_checkpoint(&victim, false, 50_000, &snap).unwrap();
    assert!(snap.is_file(), "fabricated kill state missing");

    let mut o = opts(&resumed, 2);
    o.checkpoint_every_ps = Some(50_000);
    let outcome = run_campaign(&spec, &o).unwrap();
    assert_eq!((outcome.executed, outcome.pending), (8, 0));
    assert_eq!(sorted_jsonl(&fresh), sorted_jsonl(&resumed));
    assert_eq!(csv(&fresh), csv(&resumed));
    // Every run completed, so every rolling checkpoint is spent and gone.
    assert_eq!(
        std::fs::read_dir(&ckdir).unwrap().count(),
        0,
        "completed runs must delete their checkpoints"
    );
    std::fs::remove_dir_all(&fresh).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn a_torn_campaign_checkpoint_is_discarded_and_rerun() {
    let spec = tiny_spec();
    let fresh = temp_dir("ckpt-torn-fresh");
    run_campaign(&spec, &opts(&fresh, 2)).unwrap();

    // A checkpoint torn by a kill mid-write (here: garbage bytes) must be
    // detected, discarded with a warning, and the run restarted from
    // scratch — never silently restored.
    let dir = temp_dir("ckpt-torn");
    let ckdir = checkpoints_dir(&dir);
    std::fs::create_dir_all(&ckdir).unwrap();
    let victim = spec.expand().unwrap().remove(0);
    std::fs::write(checkpoint_path(&dir, &victim), "mermaid-snapshot-v1 sch").unwrap();

    let mut o = opts(&dir, 2);
    o.checkpoint_every_ps = Some(50_000);
    run_campaign(&spec, &o).unwrap();
    assert_eq!(sorted_jsonl(&fresh), sorted_jsonl(&dir));
    assert_eq!(csv(&fresh), csv(&dir));
    assert_eq!(std::fs::read_dir(&ckdir).unwrap().count(), 0);
    std::fs::remove_dir_all(&fresh).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_final_line_is_dropped_and_reexecuted() {
    let spec = tiny_spec();
    let dir = temp_dir("torn");
    run_campaign(&spec, &opts(&dir, 1)).unwrap();
    let clean_jsonl = sorted_jsonl(&dir);
    let clean_csv = csv(&dir);

    // Tear the final record mid-write: strip the trailing newline and
    // half the last line — the footprint of a SIGKILL during append.
    let path = dir.join(RUNS_FILE);
    let data = std::fs::read_to_string(&path).unwrap();
    let keep = data.len() - 40;
    std::fs::write(&path, &data[..keep]).unwrap();
    assert_eq!(load_records(&path).unwrap().len(), 7, "torn tail dropped");

    // Resume: exactly the torn run re-executes, and the artifacts heal to
    // byte-identical.
    let outcome = run_campaign(&spec, &opts(&dir, 1)).unwrap();
    assert_eq!((outcome.recorded_before, outcome.executed), (7, 1));
    assert_eq!(sorted_jsonl(&dir), clean_jsonl);
    assert_eq!(csv(&dir), clean_csv);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hundred_run_grid_completes_in_one_invocation() {
    // The acceptance-criteria scale test: a ≥100-run grid, streamed in a
    // single invocation. 3 topologies × 2 patterns × 3 seeds × 3 phase
    // counts × 2 ops values = 108 runs, each a real simulation.
    let spec = CampaignSpec::parse(
        "topo = ring:4, mesh:2x2, full:4; pattern = ring, all2all; \
         seed = 1, 2, 3; phases = 1, 2, 3; ops = 100, 200",
    )
    .unwrap();
    assert_eq!(spec.expand().unwrap().len(), 108);
    let dir = temp_dir("grid108");
    let outcome = run_campaign(&spec, &opts(&dir, 8)).unwrap();
    assert_eq!(
        (outcome.expanded, outcome.executed, outcome.pending),
        (108, 108, 0)
    );
    assert_eq!(sorted_jsonl(&dir).len(), 108);
    // Every record is loadable and keyed by its own config's hash.
    let records = load_records(&dir.join(RUNS_FILE)).unwrap();
    assert_eq!(records.len(), 108);
    for r in &records {
        assert_eq!(r.config_hash, r.config.config_hash());
        assert!(r.all_done);
        assert!(r.predicted_ps > 0);
    }
    // The CSV view covers every run plus a header.
    assert_eq!(csv(&dir).lines().count(), 109);
    // Immediately re-running does zero new work.
    let again = run_campaign(&spec, &opts(&dir, 8)).unwrap();
    assert_eq!((again.recorded_before, again.executed), (108, 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn attribution_headlines_are_recorded_and_shard_invariant() {
    // `shards` participates in the grid, so the same workload runs once
    // serial and once on 3 workers; the attribution headline is derived
    // from the deterministic probe stream and must not notice.
    let spec = CampaignSpec::parse(
        "topo = torus:2x2; pattern = all2all; machine = test; \
         phases = 1; ops = 300; shards = 1, 3",
    )
    .unwrap();
    let dir = temp_dir("attr");
    let mut o = opts(&dir, 2);
    o.attribution = true;
    run_campaign(&spec, &o).unwrap();

    let records = load_records(&dir.join(RUNS_FILE)).unwrap();
    assert_eq!(records.len(), 2);
    let heads: Vec<_> = records
        .iter()
        .map(|r| r.attribution.clone().expect("headline recorded"))
        .collect();
    assert_eq!(
        heads[0], heads[1],
        "attribution must not depend on shard count"
    );
    assert!(heads[0].max_link_util_ppm > 0);
    let summary = csv(&dir);
    assert!(summary.contains("attr_dominant"));
    assert!(summary.contains(&heads[0].dominant));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_campaign_summary_csv() {
    // Snapshot of the CSV view for the check.sh smoke campaign. The same
    // spec runs there against the installed binary; here it pins the
    // exact bytes. BLESS=1 regenerates after intentional changes.
    let spec = CampaignSpec::parse(
        "topo = ring:4, mesh:2x2, torus:2x2; pattern = ring, all2all; \
         machine = test; phases = 2; ops = 500; seed = 5",
    )
    .unwrap();
    let dir = temp_dir("golden");
    run_campaign(&spec, &opts(&dir, 2)).unwrap();
    let got = csv(&dir);
    std::fs::remove_dir_all(&dir).ok();

    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/campaign_summary.csv");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — run `BLESS=1 cargo test --test campaign_end_to_end`",
            golden.display()
        )
    });
    assert_eq!(
        got, want,
        "campaign CSV drifted — if intentional, regenerate with \
         `BLESS=1 cargo test --test campaign_end_to_end` and review the diff"
    );
}
