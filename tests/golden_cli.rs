//! Golden-file snapshot tests for the CLI.
//!
//! Each case runs an exact `mermaid-cli` invocation in-process (via
//! [`mermaid::cli::run`]) and compares the rendered output byte-for-byte
//! against a checked-in snapshot under `tests/golden/`. Only fully
//! deterministic invocations are snapshotted — task-level simulations
//! (no wall-clock slowdown lines) and static reports.
//!
//! To regenerate the snapshots after an intentional output change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_cli
//! ```
//!
//! then review the diff under `tests/golden/` like any other code change.

use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Run a CLI invocation and compare (or, with `BLESS=1`, rewrite) its
/// golden snapshot.
fn check(name: &str, args: &[&str]) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let out = mermaid::cli::run(&args).unwrap_or_else(|e| panic!("{name}: CLI failed: {e}"));
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &out).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — run `BLESS=1 cargo test --test golden_cli` to create it",
            path.display()
        )
    });
    assert_eq!(
        out,
        want,
        "output of `{}` drifted from {} — if intentional, regenerate with \
         `BLESS=1 cargo test --test golden_cli` and review the diff",
        args.join(" "),
        path.display()
    );
}

#[test]
fn golden_table1() {
    check("table1.txt", &["table1"]);
}

#[test]
fn golden_topo_report() {
    check("topo_mesh4x4.txt", &["topo", "mesh:4x4"]);
}

#[test]
fn golden_task_sim_healthy() {
    check(
        "sim_task_healthy.txt",
        &[
            "sim",
            "--machine",
            "test",
            "--topology",
            "mesh:4x4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
        ],
    );
}

#[test]
fn golden_task_sim_faulty_partition() {
    // The acceptance scenario: corner node 15 of a 4×4 mesh loses both
    // links permanently; the snapshot pins the degraded-mode report
    // (unreachable pairs, retry counts) exactly.
    check(
        "sim_task_faulty_partition.txt",
        &[
            "sim",
            "--machine",
            "test",
            "--topology",
            "mesh:4x4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
            "--faults",
            "link:15-11:0; link:15-14:0",
            "--fault-seed",
            "3",
        ],
    );
}

#[test]
fn golden_task_sim_faulty_transient() {
    // A healing outage plus background loss: everything is delivered, but
    // the fault headline records the drops and retransmissions.
    check(
        "sim_task_faulty_transient.txt",
        &[
            "sim",
            "--machine",
            "test",
            "--topology",
            "ring:8",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
            "--faults",
            "link:0-1:2000:60000; drop:20000",
            "--fault-seed",
            "9",
        ],
    );
}

#[test]
fn golden_analyze_task_torus() {
    // The bottleneck-attribution report: latency decomposition table,
    // hotspot rankings, and the utilization heatmap, pinned byte-for-byte.
    check(
        "analyze_task_torus.txt",
        &[
            "analyze",
            "--machine",
            "test",
            "--topology",
            "torus:4x4",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
        ],
    );
}

#[test]
fn golden_analyze_faulty_ring() {
    // Attribution under fault pressure: the retry component and the fault
    // activity line join the report.
    check(
        "analyze_faulty_ring.txt",
        &[
            "analyze",
            "--machine",
            "test",
            "--topology",
            "ring:8",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
            "--faults",
            "link:0-1:2000:60000; drop:20000",
            "--fault-seed",
            "9",
        ],
    );
}

#[test]
fn golden_analyze_is_shard_invariant() {
    // The analyze snapshot re-run on 3 shards must land on the same
    // golden bytes as the serial snapshot above.
    if std::env::var_os("BLESS").is_some() {
        return; // blessing is done by the serial test
    }
    let args: Vec<String> = [
        "analyze",
        "--machine",
        "test",
        "--topology",
        "torus:4x4",
        "--phases",
        "2",
        "--pattern",
        "all2all",
        "--seed",
        "5",
        "--shards",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = mermaid::cli::run(&args).unwrap();
    let want =
        std::fs::read_to_string(golden_dir().join("analyze_task_torus.txt")).unwrap_or_else(|_| {
            panic!("missing golden file — run `BLESS=1 cargo test --test golden_cli`")
        });
    assert_eq!(
        out, want,
        "sharded analyze diverged from the serial snapshot"
    );
}

#[test]
fn golden_faulty_runs_are_shard_invariant() {
    // The faulty snapshots above are single-threaded; this pins the same
    // invocation with `--shards 3` to the same golden file, so the
    // snapshot itself witnesses serial/sharded bit-identity.
    for (name, faults) in [
        (
            "sim_task_faulty_partition.txt",
            "link:15-11:0; link:15-14:0",
        ),
        ("sim_task_healthy.txt", ""),
    ] {
        if std::env::var_os("BLESS").is_some() {
            continue; // blessing is done by the serial tests
        }
        let mut args = vec![
            "sim",
            "--machine",
            "test",
            "--topology",
            "mesh:4x4",
            "--mode",
            "task",
            "--phases",
            "2",
            "--pattern",
            "all2all",
            "--seed",
            "5",
            "--shards",
            "3",
        ];
        if !faults.is_empty() {
            args.extend(["--faults", faults, "--fault-seed", "3"]);
        }
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let out = mermaid::cli::run(&args).unwrap();
        let want = std::fs::read_to_string(golden_dir().join(name)).unwrap_or_else(|_| {
            panic!("missing golden file {name} — run `BLESS=1 cargo test --test golden_cli`")
        });
        assert_eq!(
            out, want,
            "sharded run diverged from the serial snapshot {name}"
        );
    }
}
