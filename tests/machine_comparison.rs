//! Cross-machine sanity: the calibrated presets must order themselves the
//! way the real machines did (a generational sweep the workbench exists to
//! make quantitative).

use mermaid::prelude::*;
use mermaid::{labelled_sweep, MachineConfig};
use mermaid_network::Topology;

fn workload(nodes: u32) -> TraceSet {
    let app = StochasticApp {
        phases: 4,
        ops_per_phase: SizeDist::Fixed(5_000),
        pattern: CommPattern::NearestNeighborRing,
        msg_bytes: SizeDist::Fixed(8_192),
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, 77).generate()
}

#[test]
fn paragon_outruns_the_transputer_generation() {
    let nodes = 16u32;
    let traces = workload(nodes);
    let t805 = HybridSim::new(MachineConfig::t805_multicomputer(Topology::Mesh2D {
        w: 4,
        h: 4,
    }))
    .run(&traces);
    let paragon = HybridSim::new(MachineConfig::paragon(4, 4)).run(&traces);
    assert!(t805.comm.all_done && paragon.comm.all_done);
    let speedup = t805.predicted_time.as_ps() as f64 / paragon.predicted_time.as_ps() as f64;
    assert!(
        speedup > 3.0,
        "a Paragon should be several times faster than a transputer machine, got {speedup:.1}×"
    );
}

#[test]
fn machine_sweep_orders_by_generation() {
    let nodes = 8u32;
    let traces = workload(nodes);
    let machines = vec![
        (
            "t805".to_string(),
            MachineConfig::t805_multicomputer(Topology::Ring(nodes)),
        ),
        ("paragon".to_string(), MachineConfig::paragon(4, 2)),
        (
            "ppc601 cluster".to_string(),
            MachineConfig::powerpc601_cluster(Topology::Ring(nodes), 1),
        ),
    ];
    let results = labelled_sweep(machines, |m| {
        let r = HybridSim::new(m.clone()).run(&traces);
        assert!(r.comm.all_done, "{} deadlocked", m.name);
        r.predicted_time
    });
    let by_name = |n: &str| {
        results
            .iter()
            .find(|(name, _)| name == n)
            .map(|&(_, t)| t)
            .unwrap()
    };
    // Transputer slowest; the two 90s hw-routed machines both far faster.
    assert!(by_name("t805") > by_name("paragon"));
    assert!(by_name("t805") > by_name("ppc601 cluster"));
}

#[test]
fn all_presets_survive_every_mode() {
    // Every machine preset through detailed + task-level + direct — no
    // panics, no deadlocks.
    use mermaid::{DirectExecSim, TaskLevelSim};
    let nodes = 4u32;
    let traces = workload(nodes);
    let gen = StochasticGenerator::new(
        StochasticApp {
            phases: 4,
            ..StochasticApp::scientific(nodes)
        },
        77,
    );
    let task_traces = gen.generate_task_level();
    for machine in [
        MachineConfig::t805_multicomputer(Topology::Ring(nodes)),
        MachineConfig::paragon(2, 2),
        MachineConfig::powerpc601_cluster(Topology::Ring(nodes), 1),
        MachineConfig::test_machine(Topology::Ring(nodes)),
    ] {
        let h = HybridSim::new(machine.clone()).run(&traces);
        assert!(h.comm.all_done, "{} hybrid deadlocked", machine.name);
        let t = TaskLevelSim::new(machine.network).run(&task_traces);
        assert!(t.comm.all_done, "{} task-level deadlocked", machine.name);
        let d = DirectExecSim::new(machine.clone()).run(&traces);
        assert!(d.comm.all_done, "{} direct deadlocked", machine.name);
        // Direct execution is optimistic or equal, never pessimistic, with
        // write-allocate caches under this model.
        assert!(d.predicted_time <= h.predicted_time, "{}", machine.name);
    }
}
