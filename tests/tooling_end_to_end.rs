//! End-to-end tests of the workbench tooling: trace files feeding
//! simulations, observer output feeding the post-mortem renderers, and
//! report artefacts.

use mermaid::prelude::*;
use mermaid::{observer, report};
use mermaid_ops::file as trace_file;
use mermaid_stats::gnuplot::{series_script, PlotSpec};

fn workload(nodes: u32) -> TraceSet {
    let app = StochasticApp {
        phases: 3,
        ops_per_phase: SizeDist::Fixed(800),
        pattern: CommPattern::NearestNeighborRing,
        ..StochasticApp::scientific(nodes)
    };
    StochasticGenerator::new(app, 99).generate()
}

#[test]
fn traces_saved_to_disk_simulate_identically() {
    let dir = std::env::temp_dir().join(format!("mermaid-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let traces = workload(4);
    trace_file::save_trace_set(&traces, &dir).unwrap();
    let loaded = trace_file::load_trace_set(&dir).unwrap();
    assert_eq!(loaded, traces);

    let machine = MachineConfig::t805_multicomputer(Topology::Ring(4));
    let a = HybridSim::new(machine.clone()).run(&traces);
    let b = HybridSim::new(machine).run(&loaded);
    assert_eq!(a.predicted_time, b.predicted_time);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn observer_output_renders_to_every_postmortem_format() {
    let machine = MachineConfig::test_machine(Topology::Ring(4));
    let traces = StochasticGenerator::new(
        StochasticApp {
            phases: 6,
            ..StochasticApp::scientific(4)
        },
        1,
    )
    .generate_task_level();
    let (result, run) = observer::observe_task_level(machine.network, &traces, 32, |_| {});
    assert!(result.all_done);

    // Sparkline.
    let sl = mermaid_stats::chart::sparkline(&run.messages, 24);
    assert!(!sl.is_empty());

    // CSV with a shared time axis.
    let csv = mermaid_stats::csv::series_to_csv(&[&run.messages, &run.nodes_done]);
    assert!(csv.starts_with("time_ps,messages,nodes_done"));
    assert!(csv.lines().count() > 2);

    // Gnuplot script.
    let script = series_script(&PlotSpec::default(), &[&run.messages, &run.nodes_done]);
    assert!(script.contains("$messages << EOD"));
    assert!(script.contains("plot $messages"));
}

#[test]
fn report_tables_export_to_csv_consistently() {
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(3));
    let r = HybridSim::new(machine).run(&workload(3));
    let table = report::hybrid_table(&r);
    let csv = table.to_csv();
    // Header + one row per node; every row has the header's column count.
    let mut lines = csv.lines();
    let header_cols = lines.next().unwrap().split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), header_cols);
        rows += 1;
    }
    assert_eq!(rows, 3);
}

#[test]
fn traced_run_is_deterministic_under_observation() {
    // A fully instrumented 4-node run must produce a parseable Chrome
    // trace whose delivered-message count and finish time exactly match an
    // untraced `CommSim::run()` — observation changes nothing.
    use mermaid_network::CommSim;
    use mermaid_probe::validate_chrome_trace;

    let machine = MachineConfig::test_machine(Topology::Ring(4));
    let traces = StochasticGenerator::new(
        StochasticApp {
            phases: 4,
            ..StochasticApp::scientific(4)
        },
        7,
    )
    .generate_task_level();

    let plain = CommSim::new(machine.network, &traces).run();
    assert!(plain.all_done);

    let probe = ProbeHandle::new(
        ProbeStack::new()
            .with_metrics()
            .with_chrome()
            .with_jsonl()
            .with_profiler(mermaid::host_frequency().as_hz() as f64),
    );
    let traced = TaskLevelSim::new(machine.network)
        .with_probe(probe.clone())
        .run(&traces);

    // Simulated observables are bit-identical to the untraced run.
    assert_eq!(traced.comm.finish, plain.finish);
    assert_eq!(traced.comm.events, plain.events);
    assert_eq!(traced.comm.total_messages, plain.total_messages);
    assert_eq!(traced.comm.total_bytes, plain.total_bytes);

    // The emitted trace parses and its summary matches the run exactly.
    let json = probe.chrome_trace_json().unwrap();
    let summary = validate_chrome_trace(&json).unwrap();
    assert_eq!(summary.delivered_messages, Some(plain.total_messages));
    assert_eq!(summary.finish_ps, Some(plain.finish.as_ps()));

    // The metrics aggregator counted the same deliveries.
    let report = probe.metrics_report(plain.finish.as_ps()).unwrap();
    let csv = report.to_csv();
    let msg_line = csv
        .lines()
        .find(|l| l.starts_with("net/messages,"))
        .unwrap_or_else(|| panic!("no net/messages in:\n{csv}"));
    assert_eq!(msg_line, format!("net/messages,{}", plain.total_messages));

    // The JSONL stream carries one delivery record per message.
    let jsonl = probe.jsonl_output().unwrap();
    let delivers = jsonl
        .lines()
        .filter(|l| l.contains("\"msg_deliver\""))
        .count() as u64;
    assert_eq!(delivers, plain.total_messages);

    // The self-profiler saw the run happen on the host.
    let profile = probe.host_profile().unwrap();
    assert!(profile.events > 0);
}

#[test]
fn faulty_traced_run_validates_with_fault_events_counted() {
    // Regression: a traced run under fault injection must still produce a
    // valid Chrome trace (per-track span starts stay monotonic even with
    // retries and reroutes in play), and the validator's fault-event tally
    // must see the injected activity that a healthy run never emits.
    use mermaid_network::{FaultSchedule, RetryParams};
    use mermaid_probe::validate_chrome_trace;
    use pearl::Time;
    use std::sync::Arc;

    let machine = MachineConfig::test_machine(Topology::Ring(4));
    let traces = StochasticGenerator::new(
        StochasticApp {
            phases: 4,
            ..StochasticApp::scientific(4)
        },
        7,
    )
    .generate_task_level();

    let mut schedule = FaultSchedule::new(9).with_retry(RetryParams::default_for(&machine.network));
    schedule.cut_link(0, 1, Time::from_us(1), Some(Time::from_us(40)));
    let faults = Some(Arc::new(schedule));

    let healthy_probe = ProbeHandle::new(ProbeStack::new().with_chrome());
    TaskLevelSim::new(machine.network)
        .with_probe(healthy_probe.clone())
        .run(&traces);
    let healthy = validate_chrome_trace(&healthy_probe.chrome_trace_json().unwrap()).unwrap();
    assert_eq!(healthy.fault_events, 0, "healthy runs emit no fault events");

    let probe = ProbeHandle::new(ProbeStack::new().with_chrome());
    let faulty = TaskLevelSim::new(machine.network)
        .with_probe(probe.clone())
        .with_faults(faults)
        .run(&traces);
    assert!(faulty.comm.all_done);
    let summary = validate_chrome_trace(&probe.chrome_trace_json().unwrap())
        .expect("faulty trace must still validate");
    assert!(
        summary.fault_events >= 2,
        "at least link_down + link_up expected, got {}",
        summary.fault_events
    );
    assert_eq!(summary.delivered_messages, Some(faulty.comm.total_messages));
}

#[test]
fn run_time_watching_does_not_perturb_results() {
    // Fig. 1's run-time visualisation must be a pure observer: watching at
    // different sampling granularities yields identical simulations.
    let machine = MachineConfig::test_machine(Topology::Ring(4));
    let traces = StochasticGenerator::new(
        StochasticApp {
            phases: 5,
            ..StochasticApp::scientific(4)
        },
        2,
    )
    .generate_task_level();
    let (fine, _) = observer::observe_task_level(machine.network, &traces, 8, |_| {});
    let (coarse, _) = observer::observe_task_level(machine.network, &traces, 10_000, |_| {});
    assert_eq!(fine.finish, coarse.finish);
    assert_eq!(fine.total_messages, coarse.total_messages);
    assert_eq!(fine.events, coarse.events);
}
