//! Design-space exploration with an instrumented program: a 1-D Jacobi
//! stencil (annotation translator + physical-time-interleaved generation)
//! across interconnect topologies and link speeds.
//!
//! This is the workbench used the way the paper intends: one
//! architecture-independent application description, many architectures
//! (Fig. 1's "Architecture X / Architecture Y").
//!
//! Run with: `cargo run --release --example stencil_study`

use mermaid::prelude::*;
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use mermaid_tracegen::annotate::TargetLayout;
use mermaid_tracegen::programs::jacobi1d;
use mermaid_tracegen::InterleavedTraceGen;

fn main() {
    let nodes = 8u32;
    let cells = 64u64;
    let iters = 10u32;

    // The instrumented program, generated once per architecture through the
    // threaded, physical-time-interleaved generator (Section 3.1). The
    // description itself is architecture-independent.
    let generate = move || {
        InterleavedTraceGen::spawn(nodes, TargetLayout::default(), move |ctx| {
            jacobi1d(ctx, nodes, cells, iters)
        })
        .collect_all()
    };
    let traces = generate();
    println!(
        "jacobi1d: {nodes} nodes × {cells} cells × {iters} sweeps — {} operations\n",
        traces.total_ops()
    );

    let topologies = [
        Topology::Ring(nodes),
        Topology::Mesh2D { w: 4, h: 2 },
        Topology::Torus2D { w: 4, h: 2 },
        Topology::Hypercube { dim: 3 },
        Topology::FullyConnected(nodes),
    ];

    let mut table = Table::new([
        "topology",
        "links",
        "diameter",
        "t805 predicted",
        "hw-routed predicted",
    ])
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    for topo in topologies {
        // Transputer-class machine.
        let mut m_t805 = MachineConfig::t805_multicomputer(topo);
        let r_t805 = HybridSim::new(m_t805.clone()).run(&traces);
        assert!(r_t805.comm.all_done, "deadlock on {}", topo.label());

        // Same nodes, hardware-routed network.
        m_t805.network = mermaid_network::NetworkConfig::hw_routed(topo);
        let r_hw = HybridSim::new(m_t805).run(&traces);

        table.row([
            topo.label(),
            topo.link_count().to_string(),
            topo.diameter().to_string(),
            format!("{}", r_t805.predicted_time),
            format!("{}", r_hw.predicted_time),
        ]);
    }
    println!("{}", table.render());
    println!("Nearest-neighbour halo traffic barely distinguishes topologies —");
    println!("the stencil only talks to adjacent ranks, which every topology keeps close;");
    println!("link technology (transputer vs hardware routing) dominates instead.");
}
