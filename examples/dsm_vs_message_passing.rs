//! Virtual shared memory vs explicit message passing (paper Section 5.1).
//!
//! The paper's annotation scheme exposes the physical topology: `send`
//! destinations name nodes. Its announced fix — "we will use a virtual
//! shared memory in the future to hide all explicit communication" — is
//! implemented in `mermaid-dsm`. This example runs the *same algorithm*
//! (row-block matrix multiply) both ways on the same machine and compares
//! what the programmer wrote against what the network carried.
//!
//! Run with: `cargo run --release --example dsm_vs_message_passing`

use mermaid::prelude::*;
use mermaid_dsm::programs::dsm_matmul;
use mermaid_dsm::DsmConfig;
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use mermaid_tracegen::annotate::TargetLayout;
use mermaid_tracegen::programs::block_matmul;
use mermaid_tracegen::InterleavedTraceGen;

fn main() {
    let nodes = 4u32;
    let n = 24u64;
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(nodes));
    println!(
        "matrix multiply, {n}×{n} doubles over {nodes} nodes — {}\n",
        machine.name
    );

    // Explicit message passing: B replicated, C gathered by send/recv.
    let mp_traces = InterleavedTraceGen::spawn(nodes, TargetLayout::default(), move |ctx| {
        block_matmul(ctx, nodes, n)
    })
    .collect_all();
    let mp = HybridSim::new(machine.clone()).run(&mp_traces);
    assert!(mp.comm.all_done);

    // DSM: A, B, C shared; communication is the runtime's business.
    for page_bytes in [512u32, 2048, 8192] {
        let dsm_traces = InterleavedTraceGen::spawn(nodes, TargetLayout::default(), move |ctx| {
            dsm_matmul(ctx, DsmConfig { nodes, page_bytes }, n)
        })
        .collect_all();
        let dsm = HybridSim::new(machine.clone()).run(&dsm_traces);
        assert!(
            dsm.comm.all_done,
            "DSM run deadlocked: {:?}",
            dsm.comm.deadlocked
        );

        let row = |label: String, r: &mermaid::HybridResult, visible_comm: u64| {
            let s = r.task_traces.stats();
            vec![
                label,
                format!("{}", r.predicted_time),
                visible_comm.to_string(),
                (s.gets + s.puts).to_string(),
                (s.bytes_sent + s.bytes_fetched).to_string(),
            ]
        };
        if page_bytes == 512 {
            let mut table = Table::new([
                "variant",
                "predicted",
                "programmer-visible comm ops",
                "one-sided ops",
                "network bytes",
            ])
            .with_aligns(vec![
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
            let mp_stats = mp.task_traces.stats();
            table.row(row("message passing".to_string(), &mp, mp_stats.comm_ops()));
            let d = dsm.task_traces.stats();
            table.row(row(
                format!("DSM, {page_bytes} B pages"),
                &dsm,
                d.sends + d.recvs + d.asends + d.arecvs,
            ));
            println!("{}", table.render());
        } else {
            let d = dsm.task_traces.stats();
            println!(
                "DSM, {page_bytes:>5} B pages: predicted {}, {} page faults, {} network bytes",
                dsm.predicted_time,
                d.gets,
                d.bytes_sent + d.bytes_fetched
            );
        }
    }
    println!();
    println!("The DSM application names no nodes at all (only barriers remain visible);");
    println!("page size trades fault count against transferred volume.");
}
