//! Cache design-space study — the workbench doing exactly what the paper
//! built it for: "supporting the performance evaluation of a wide range of
//! architectural design options by means of parameterization", including
//! the cache evaluations that direct-execution simulators cannot do
//! (Section 2).
//!
//! We fix the PowerPC-601-class core and sweep the L1 data cache over
//! size × associativity × line size, running the same instruction-level
//! workload through the detailed computational model each time (in
//! parallel across host cores). The output is the designer's grid: hit
//! rate and execution time per configuration.
//!
//! Run with: `cargo run --release --example cache_design_study`

use mermaid::parallel_sweep;
use mermaid::prelude::*;
use mermaid_memory::CacheParams;
use mermaid_stats::table::Align;
use mermaid_stats::Table;

fn main() {
    // A scientific workload with a ~48 KiB working set and mixed locality:
    // big enough to punish small caches, local enough to reward bigger ones.
    let app = StochasticApp {
        nodes: 1,
        phases: 1,
        ops_per_phase: SizeDist::Fixed(120_000),
        working_set: 48 * 1024,
        seq_permille: 700,
        pattern: CommPattern::None,
        ..StochasticApp::scientific(1)
    };
    let traces = StochasticGenerator::new(app, 4242).generate();
    let trace = traces.trace(0).clone();

    let sizes = [8u64 * 1024, 16 * 1024, 32 * 1024, 64 * 1024];
    let assocs = [1u32, 2, 8];
    let lines = [32u32, 64]; // L2 uses 64 B lines; inclusion caps L1 at 64 B

    let mut grid: Vec<(u64, u32, u32)> = Vec::new();
    for &s in &sizes {
        for &a in &assocs {
            for &l in &lines {
                grid.push((s, a, l));
            }
        }
    }
    println!(
        "PowerPC 601 core, {} ops, 48 KiB working set — {} cache designs\n",
        trace.len(),
        grid.len()
    );

    let results = parallel_sweep(grid, |&(size, assoc, line)| {
        let mut machine = MachineConfig::powerpc601_node(1);
        machine.node_mem.l1d = CacheParams {
            size_bytes: size,
            line_bytes: line,
            assoc,
            ..machine.node_mem.l1d
        };
        let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let r = sim.run(&[&trace]);
        let hit = r.mem_stats.l1d[0].hit_rate();
        (size, assoc, line, hit, r.finish)
    });

    let mut table = Table::new(["L1D size", "ways", "line", "hit%", "exec time", "vs best"])
        .with_aligns(vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let best = results.iter().map(|&(_, _, _, _, t)| t).min().unwrap();
    for (size, assoc, line, hit, t) in &results {
        table.row([
            format!("{} KiB", size / 1024),
            assoc.to_string(),
            format!("{line} B"),
            format!("{:.1}", hit * 100.0),
            format!("{t}"),
            format!(
                "{:+.1}%",
                100.0 * (t.as_ps() as f64 / best.as_ps() as f64 - 1.0)
            ),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shapes: hit rate rises with size until the working set fits (~98%");
    println!("at 64 KiB); longer lines help this sequential-leaning workload; associativity");
    println!("matters little here because the uniform address stream causes few conflicts.");
    println!(
        "A direct-execution simulator would print the same number for all {} rows.",
        results.len()
    );
}
