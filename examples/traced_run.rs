//! Traced run: the observability layer end to end (DESIGN.md §10).
//!
//! A task-level simulation of a 16-node T805 mesh runs with the full probe
//! stack attached — metrics aggregator, Chrome-trace exporter, JSONL event
//! stream, and the wall-clock self-profiler. The Chrome trace is written
//! to disk, read back, and re-validated through the vendored serde_json
//! parser, proving the emitted artefact round-trips; the process exits
//! non-zero if any observable disagrees with an untraced run.
//!
//! Run with: `cargo run --release --example traced_run`

use mermaid::prelude::*;
use mermaid::probe::validate_chrome_trace;
use mermaid_network::CommSim;

fn main() {
    let nodes = 16;
    let app = StochasticApp {
        phases: 5,
        pattern: CommPattern::NearestNeighborRing,
        msg_bytes: SizeDist::Fixed(4 * 1024),
        task_ps: SizeDist::Fixed(2_000_000),
        ..StochasticApp::scientific(nodes)
    };
    let traces = StochasticGenerator::new(app, 7).generate_task_level();
    let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 });
    println!("machine: {}\n", machine.name);

    // Reference: the same run with no probe attached.
    let plain = CommSim::new(machine.network, &traces).run();

    // The instrumented run: every sink on one handle.
    let probe = ProbeHandle::new(
        ProbeStack::new()
            .with_metrics()
            .with_chrome()
            .with_jsonl()
            .with_profiler(mermaid::host_frequency().as_hz() as f64),
    );
    let traced = TaskLevelSim::new(machine.network)
        .with_probe(probe.clone())
        .run(&traces);

    // Observation must not perturb the simulation.
    assert_eq!(traced.comm.finish, plain.finish, "finish time perturbed");
    assert_eq!(traced.comm.events, plain.events, "event count perturbed");
    assert_eq!(
        traced.comm.total_messages, plain.total_messages,
        "message count perturbed"
    );
    println!(
        "predicted time: {}  ({} messages, {} events) — identical traced and untraced\n",
        plain.finish, plain.total_messages, plain.events
    );

    // Write the Chrome trace and round-trip it through the JSON parser.
    let path = std::env::temp_dir().join("mermaid-traced-run.json");
    let json = probe.chrome_trace_json().expect("chrome sink attached");
    std::fs::write(&path, &json).expect("write trace");
    let reread = std::fs::read_to_string(&path).expect("read trace back");
    let summary = validate_chrome_trace(&reread).expect("emitted trace must validate");
    assert_eq!(summary.delivered_messages, Some(plain.total_messages));
    assert_eq!(summary.finish_ps, Some(plain.finish.as_ps()));
    println!(
        "trace written: {} ({} bytes; open in chrome://tracing or Perfetto)",
        path.display(),
        reread.len()
    );
    println!(
        "trace summary round-trips: {} messages, finish {} ps\n",
        summary.delivered_messages.unwrap(),
        summary.finish_ps.unwrap()
    );

    // Post-mortem halves: metrics table and the simulator's self-profile.
    let report = probe
        .metrics_report(plain.finish.as_ps())
        .expect("metrics sink attached");
    println!("{}", report.render());
    let profile = probe.host_profile().expect("profiler attached");
    println!("{}", profile.render());

    let jsonl = probe.jsonl_output().expect("jsonl sink attached");
    println!("jsonl event stream: {} records", jsonl.lines().count());
}
