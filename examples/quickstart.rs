//! Quickstart: one walk through the whole Mermaid pipeline (paper Fig. 1).
//!
//! Application level → trace generator → architecture models → analysis:
//! we describe an application stochastically, generate operation traces,
//! simulate them in detail on a T805 transputer multicomputer, and print
//! the analysis tables.
//!
//! Run with: `cargo run --release --example quickstart`

use mermaid::prelude::*;
use mermaid::{report, SlowdownMeter};
use mermaid_ops::table1;

fn main() {
    // ── Application level ──────────────────────────────────────────────
    // A stochastic application description: 8 processes alternating dense
    // floating-point phases with nearest-neighbour exchanges.
    let nodes = 8;
    let app = StochasticApp {
        phases: 6,
        ops_per_phase: SizeDist::Uniform(3_000, 6_000),
        pattern: CommPattern::NearestNeighborRing,
        msg_bytes: SizeDist::Fixed(8 * 1024),
        ..StochasticApp::scientific(nodes)
    };
    let traces = StochasticGenerator::new(app, 2024).generate();
    println!(
        "generated {} operations over {} nodes\n",
        traces.total_ops(),
        traces.nodes()
    );
    println!("{}", traces.stats());
    println!();

    // The operation vocabulary driving everything (paper Table 1):
    println!("{}", table1::render());

    // ── Architecture level ─────────────────────────────────────────────
    // A T805 transputer multicomputer on a ring — the class of machine the
    // paper's evaluation simulates.
    let machine = MachineConfig::t805_multicomputer(Topology::Ring(nodes));
    println!("machine: {}\n", machine.name);

    // ── Detailed (hybrid) simulation ───────────────────────────────────
    let meter = SlowdownMeter::start(nodes, machine.cpu.clock);
    let result = HybridSim::new(machine).run(&traces);
    let slowdown = meter.finish(result.predicted_time);

    assert!(
        result.comm.all_done,
        "application deadlocked: {:?}",
        result.comm.deadlocked
    );

    // ── Analysis level ─────────────────────────────────────────────────
    println!("predicted execution time: {}", result.predicted_time);
    println!(
        "messages delivered: {}  ({} payload bytes)",
        result.comm.total_messages, result.comm.total_bytes
    );
    println!();
    println!("{}", report::hybrid_table(&result).render());
    println!(
        "host wall time: {:.1} ms — slowdown {:.0}× per processor ({:.0} target cycles/s)",
        slowdown.host_wall.as_secs_f64() * 1e3,
        slowdown.slowdown_per_processor(),
        slowdown.target_cycles_per_host_second(),
    );
}
