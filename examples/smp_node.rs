//! Shared-memory multiprocessor study (paper Section 4.3, Fig. 3a).
//!
//! "By only using the computational model and configuring it with multiple
//! processors, a shared memory multiprocessor can be simulated." We sweep
//! the processor count of a PowerPC-601-class node and watch speedup, bus
//! utilisation, and coherence traffic — the design questions a snoopy-bus
//! SMP architect asks.
//!
//! Run with: `cargo run --release --example smp_node`

use mermaid::prelude::*;
use mermaid_cpu::SingleNodeSim;
use mermaid_stats::table::Align;
use mermaid_stats::Table;

/// Build one CPU's computational trace: a private working set plus a
/// shared, contended region (the coherence stressor).
fn cpu_trace(cpu: u32, cpus: u32, ops: usize, seed: u64) -> Trace {
    use mermaid_tracegen::{InstructionMix, SizeDist, StochasticApp, StochasticGenerator};
    let app = StochasticApp {
        nodes: 1,
        phases: 1,
        ops_per_phase: SizeDist::Fixed(ops as u64),
        mix: InstructionMix::scientific(),
        working_set: 64 * 1024,
        seq_permille: 800,
        loop_body_ops: 10,
        loop_iters: 25,
        pattern: CommPattern::None,
        msg_bytes: SizeDist::Fixed(0),
        task_ps: SizeDist::Fixed(0),
    };
    let mut t = StochasticGenerator::new(app, seed + cpu as u64)
        .generate()
        .trace(0)
        .clone();
    t.node = 0; // all CPUs live on node 0 in the shared-memory model
                // Interleave stores to a shared counter array every ~50 ops to create
                // coherence traffic between the CPUs.
    let shared_base = 0x4000_0000u64;
    let mut with_sharing = Trace::new(0);
    for (i, &op) in t.iter().enumerate() {
        with_sharing.push(op);
        if i % 50 == 49 {
            with_sharing.push(Operation::Store {
                ty: mermaid_ops::DataType::I64,
                addr: shared_base + ((i / 50) as u64 % 8) * 8,
            });
        }
    }
    let _ = cpus;
    with_sharing
}

fn main() {
    let ops_per_cpu = 20_000;
    let mut table = Table::new([
        "CPUs",
        "finish",
        "speedup",
        "bus util%",
        "l1d hit%",
        "invalidations",
        "snoop flushes",
    ])
    .with_aligns(vec![
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let mut base_finish = None;
    for cpus in [1usize, 2, 4, 8] {
        let machine = MachineConfig::powerpc601_node(cpus);
        let mut sim = SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let traces: Vec<Trace> = (0..cpus as u32)
            .map(|c| cpu_trace(c, cpus as u32, ops_per_cpu, 77))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = sim.run(&refs);

        let total_work: u64 = r.cpu_stats.iter().map(|s| s.ops.total).sum();
        // Throughput in operations per simulated second; speedup is
        // throughput relative to the single-CPU configuration.
        let throughput = total_work as f64 / r.finish.as_secs_f64();
        let base = *base_finish.get_or_insert(throughput);
        let speedup = throughput / base;

        let bus_util = 100.0 * r.mem_stats.bus_busy.as_ps() as f64 / r.finish.as_ps() as f64;
        let l1d_hits: u64 = r.mem_stats.l1d.iter().map(|s| s.hits).sum();
        let l1d_misses: u64 = r.mem_stats.l1d.iter().map(|s| s.misses).sum();
        let inv: u64 = r.mem_stats.l1d.iter().map(|s| s.snoop_invalidations).sum();
        let flushes: u64 = r.mem_stats.l1d.iter().map(|s| s.snoop_flushes).sum();
        table.row([
            cpus.to_string(),
            format!("{}", r.finish),
            format!("{speedup:.2}"),
            format!("{bus_util:.1}"),
            format!(
                "{:.1}",
                100.0 * l1d_hits as f64 / (l1d_hits + l1d_misses) as f64
            ),
            inv.to_string(),
            flushes.to_string(),
        ]);
    }
    println!("PowerPC 601 SMP node, {ops_per_cpu} traced ops per CPU\n");
    println!("{}", table.render());
    println!("Speedup is throughput relative to one CPU; sub-linear growth");
    println!("comes from bus arbitration and coherence misses on the shared array.");
}
