//! Regenerates the paper's Section 6 evaluation rows (experiments E1/E2):
//! per-processor slowdown of detailed and task-level simulation.
//!
//! The paper reports, on a 143 MHz UltraSPARC host:
//!   * detailed mode: slowdown ≈ 750–4 000 per processor
//!     (30 000–200 000 simulated cycles per host second);
//!   * task-level mode: slowdown ≈ 0.5–4 per processor.
//!
//! Absolute numbers on a modern host and a compiled simulator differ (the
//! paper itself blames Pearl's "moderately efficient code"); the *shape* to
//! check is detailed ≫ task-level, with the task-level slowdown within a
//! few host cycles per target cycle. Set `MERMAID_HOST_HZ` to your CPU's
//! clock for calibrated numbers.
//!
//! Run with: `cargo run --release --example slowdown_report`

use mermaid::prelude::*;
use mermaid::{report, SlowdownMeter};

fn main() {
    let mut rows = Vec::new();

    // ── Detailed mode: T805 multicomputer (mix of application loads) ──
    for (label, pattern, msg) in [
        (
            "t805×16 detailed, nn-ring",
            CommPattern::NearestNeighborRing,
            4096,
        ),
        ("t805×16 detailed, all-to-all", CommPattern::AllToAll, 1024),
    ] {
        let nodes = 16;
        let app = StochasticApp {
            phases: 4,
            ops_per_phase: SizeDist::Fixed(20_000),
            pattern,
            msg_bytes: SizeDist::Fixed(msg),
            ..StochasticApp::scientific(nodes)
        };
        let traces = StochasticGenerator::new(app, 5).generate();
        let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 });
        let meter = SlowdownMeter::start(nodes, machine.cpu.clock);
        let r = HybridSim::new(machine).run(&traces);
        assert!(r.comm.all_done);
        rows.push((label.to_string(), meter.finish(r.predicted_time)));
    }

    // ── Detailed mode: PowerPC 601 single node, two cache levels ──────
    {
        let app = StochasticApp {
            nodes: 1,
            phases: 1,
            ops_per_phase: SizeDist::Fixed(400_000),
            pattern: CommPattern::None,
            ..StochasticApp::scientific(1)
        };
        let traces = StochasticGenerator::new(app, 6).generate();
        let machine = MachineConfig::powerpc601_node(1);
        let mut sim = mermaid_cpu::SingleNodeSim::new(machine.cpu, machine.node_mem.clone());
        let meter = SlowdownMeter::start(1, machine.cpu.clock);
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = sim.run(&refs);
        rows.push((
            "ppc601×1 detailed, 2-level cache".to_string(),
            meter.finish(r.finish),
        ));
    }

    // ── Task-level mode: compute-heavy vs communication-heavy ─────────
    for (label, compute_ps, msg) in [
        ("t805×16 task-level, compute-heavy", 10_000_000u64, 512u64),
        ("t805×16 task-level, comm-heavy", 100_000u64, 65_536u64),
    ] {
        let nodes = 16;
        let app = StochasticApp {
            phases: 50,
            pattern: CommPattern::NearestNeighborRing,
            msg_bytes: SizeDist::Fixed(msg),
            task_ps: SizeDist::Fixed(compute_ps),
            ..StochasticApp::scientific(nodes)
        };
        let traces = StochasticGenerator::new(app, 7).generate_task_level();
        let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 4 });
        let meter = SlowdownMeter::start(nodes, machine.cpu.clock);
        let r = TaskLevelSim::new(machine.network).run(&traces);
        assert!(r.comm.all_done);
        rows.push((label.to_string(), meter.finish(r.predicted_time)));
    }

    println!("{}", report::slowdown_table(&rows).render());
    println!("paper (143 MHz UltraSPARC host): detailed 750–4000×/proc; task-level 0.5–4×/proc.");
    println!("expected shape: detailed rows orders of magnitude above task-level rows.");
    let detailed_max = rows[..3]
        .iter()
        .map(|(_, r)| r.slowdown_per_processor())
        .fold(f64::NAN, f64::max);
    let task_max = rows[3..]
        .iter()
        .map(|(_, r)| r.slowdown_per_processor())
        .fold(f64::NAN, f64::max);
    println!("\nmeasured: detailed ≤ {detailed_max:.1}×/proc, task-level ≤ {task_max:.2}×/proc");
}
