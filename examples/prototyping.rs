//! Fast prototyping with the stochastic generator and the task-level
//! communication model: sweep candidate interconnects for a butterfly-
//! structured (FFT-like) workload in seconds of host time.
//!
//! This is the paper's "fast prototyping" use case: high abstraction,
//! high simulation efficiency, architecture ranking rather than exact
//! prediction.
//!
//! Run with: `cargo run --release --example prototyping`

use mermaid::labelled_sweep;
use mermaid::prelude::*;
use mermaid_network::Switching;
use mermaid_stats::chart::bar_chart;
use mermaid_stats::table::Align;
use mermaid_stats::Table;

fn main() {
    let nodes = 16u32;
    let app = StochasticApp {
        phases: 12,
        pattern: CommPattern::Butterfly,
        msg_bytes: SizeDist::Fixed(16 * 1024),
        task_ps: SizeDist::Uniform(200_000, 400_000),
        ..StochasticApp::scientific(nodes)
    };
    let traces = StochasticGenerator::new(app, 1234).generate_task_level();

    let candidates = [
        Topology::Ring(nodes),
        Topology::Mesh2D { w: 4, h: 4 },
        Topology::Torus2D { w: 4, h: 4 },
        Topology::Hypercube { dim: 4 },
        Topology::Star(nodes),
        Topology::FullyConnected(nodes),
    ];

    let mut table = Table::new([
        "topology",
        "switching",
        "predicted",
        "mean link util%",
        "p99 msg lat",
    ])
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut chart_items = Vec::new();

    // The 12-point grid is embarrassingly parallel: fan it over the host's
    // cores (results stay in input order, bit-identical to a serial sweep).
    let grid: Vec<(String, (Topology, Switching))> = candidates
        .iter()
        .flat_map(|&topo| {
            [Switching::StoreAndForward, Switching::Wormhole]
                .into_iter()
                .map(move |sw| (format!("{}/{sw:?}", topo.label()), (topo, sw)))
        })
        .collect();
    let results = labelled_sweep(grid, |&(topo, switching)| {
        let mut net = mermaid_network::NetworkConfig::hw_routed(topo);
        net.router.switching = switching;
        let r = TaskLevelSim::new(net).run(&traces);
        assert!(r.comm.all_done, "deadlock on {}", topo.label());
        (topo, switching, r)
    });
    for (_, (topo, switching, r)) in results {
        let sw = match switching {
            Switching::StoreAndForward => "SAF",
            Switching::VirtualCutThrough => "VCT",
            Switching::Wormhole => "WH",
        };
        table.row([
            topo.label(),
            sw.to_string(),
            format!("{}", r.predicted_time),
            format!(
                "{:.1}",
                100.0 * r.comm.mean_link_utilization(topo.link_count())
            ),
            format!(
                "{}",
                pearl::Duration::from_ps(r.comm.msg_latency.percentile(99.0).unwrap_or(0))
            ),
        ]);
        if switching == Switching::Wormhole {
            chart_items.push((topo.label(), r.predicted_time.as_secs_f64() * 1e3));
        }
    }

    println!("FFT-like butterfly workload, {nodes} nodes, 12 stages of 16 KiB exchanges\n");
    println!("{}", table.render());
    println!("predicted time (ms), wormhole switching:");
    println!("{}", bar_chart(&chart_items, 48));
    println!("expected shape: hypercube wins on butterfly traffic (every stage is one hop);");
    println!("the star's hub saturates; store-and-forward loses at every distance > 1.");
}
