//! Machine-parameter calibration and validation (paper Section 3: models
//! are "calibrated with published information or by benchmarking").
//!
//! Runs the lmbench-style probes of `mermaid::microbench` against the two
//! calibrated machine presets and checks that the measured curves recover
//! the configured parameters — the validation loop a workbench user runs
//! after parameterising a new machine.
//!
//! Run with: `cargo run --release --example calibrate`

use mermaid::prelude::*;
use mermaid::{detect_capacity_edges, memory_stride_probe, ping_pong};
use mermaid_stats::chart::bar_chart;

fn main() {
    // ── Memory hierarchy: PowerPC 601 node ─────────────────────────────
    let ppc = MachineConfig::powerpc601_node(1);
    println!("=== {} ===\n", ppc.name);
    let footprints: Vec<u64> = (0..10).map(|i| (4u64 << 10) << i).collect();
    let curve = memory_stride_probe(&ppc, &footprints, 64);
    let items: Vec<(String, f64)> = curve
        .iter()
        .map(|p| {
            (
                format!("{:>5} KiB", p.array_bytes / 1024),
                p.per_access.as_nanos_f64(),
            )
        })
        .collect();
    println!("load latency vs footprint (ns/access):");
    println!("{}", bar_chart(&items, 40));
    let edges = detect_capacity_edges(&curve, 0.5);
    println!(
        "detected capacity edges at: {:?} KiB",
        edges.iter().map(|e| e / 1024).collect::<Vec<_>>()
    );
    println!(
        "configured: L1 {} KiB, L2 {} KiB — edges appear one step past each capacity\n",
        ppc.node_mem.l1d.size_bytes / 1024,
        ppc.node_mem.l2.unwrap().size_bytes / 1024
    );

    // ── Network: T805 links ────────────────────────────────────────────
    let t805 = MachineConfig::t805_multicomputer(Topology::Ring(4));
    println!("=== {} ===\n", t805.name);
    println!("ping-pong (node 0 ↔ 1):");
    println!("{:>10}  {:>14}  {:>12}", "bytes", "one-way", "bandwidth");
    let sizes = [16u32, 256, 4_096, 65_536, 1_048_576];
    let pp = ping_pong(&t805, &sizes, 3);
    for p in &pp {
        println!(
            "{:>10}  {:>14}  {:>9.3} MB/s",
            p.bytes,
            format!("{}", p.one_way),
            p.bandwidth / 1e6
        );
    }
    let asymptote = pp.last().unwrap().bandwidth;
    let link = t805.network.link.bandwidth_bytes_per_sec as f64;
    println!(
        "\nbandwidth asymptote {:.2} MB/s of configured {:.2} MB/s ({:.0}% — headers+hops absorb the rest)",
        asymptote / 1e6,
        link / 1e6,
        100.0 * asymptote / link
    );
    println!(
        "small-message latency {} ≈ software overheads ({} + {}) + routing + wire",
        pp[0].one_way, t805.network.software.send_overhead, t805.network.software.recv_overhead,
    );
}
