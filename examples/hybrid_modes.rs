//! The two abstraction levels of Mermaid, plus the direct-execution
//! baseline, on one application (paper Fig. 2 and Sections 2/6).
//!
//! * **Detailed (hybrid)**: computational model per node feeding the
//!   communication model with measured tasks — accurate, slow.
//! * **Task-level**: tasks come straight from the generator — fast
//!   prototyping with modest accuracy.
//! * **Direct-execution baseline**: local operations statically costed,
//!   blind to the memory hierarchy — the technique the paper rejects.
//!
//! Run with: `cargo run --release --example hybrid_modes`

use mermaid::prelude::*;
use mermaid::DirectExecSim;
use mermaid_stats::table::Align;
use mermaid_stats::Table;
use std::time::Instant;

fn main() {
    let nodes = 8;
    let app = StochasticApp {
        phases: 8,
        ops_per_phase: SizeDist::Uniform(5_000, 10_000),
        pattern: CommPattern::AllToAll,
        msg_bytes: SizeDist::Fixed(2048),
        working_set: 512 * 1024, // larger than L1: the cache matters
        ..StochasticApp::scientific(nodes)
    };
    let machine = MachineConfig::t805_multicomputer(Topology::Mesh2D { w: 4, h: 2 });
    println!(
        "machine: {}\napplication: {} phases of all-to-all over {} nodes\n",
        machine.name, 8, nodes
    );

    let gen = StochasticGenerator::new(app, 99);
    let instr_traces = gen.generate();
    let task_traces = gen.generate_task_level();

    let mut table = Table::new(["mode", "predicted time", "host ms", "ops simulated"])
        .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);

    // Detailed hybrid mode.
    let t0 = Instant::now();
    let hybrid = HybridSim::new(machine.clone()).run(&instr_traces);
    let hybrid_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(hybrid.comm.all_done);
    table.row([
        "detailed (hybrid)".to_string(),
        format!("{}", hybrid.predicted_time),
        format!("{hybrid_ms:.2}"),
        hybrid.ops_simulated.to_string(),
    ]);

    // Task-level fast prototyping (synthetic task durations).
    let t0 = Instant::now();
    let task = TaskLevelSim::new(machine.network).run(&task_traces);
    let task_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(task.comm.all_done);
    table.row([
        "task-level (fast)".to_string(),
        format!("{}", task.predicted_time),
        format!("{task_ms:.2}"),
        task.ops_simulated.to_string(),
    ]);

    // Task-level over *measured* tasks (the hybrid's intermediate product):
    // isolates the abstraction cost from the task-duration estimate.
    let t0 = Instant::now();
    let replay = TaskLevelSim::new(machine.network).run(&hybrid.task_traces);
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row([
        "task-level (measured tasks)".to_string(),
        format!("{}", replay.predicted_time),
        format!("{replay_ms:.2}"),
        replay.ops_simulated.to_string(),
    ]);

    // Direct-execution baseline.
    let t0 = Instant::now();
    let direct = DirectExecSim::new(machine).run(&instr_traces);
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row([
        "direct execution (baseline)".to_string(),
        format!("{}", direct.predicted_time),
        format!("{direct_ms:.2}"),
        direct.ops_processed.to_string(),
    ]);

    println!("{}", table.render());
    println!(
        "replaying the hybrid's measured tasks reproduces its prediction exactly: {}",
        replay.predicted_time == hybrid.predicted_time
    );
    let err = 100.0 * (direct.predicted_time.as_ps() as f64 - hybrid.predicted_time.as_ps() as f64)
        / hybrid.predicted_time.as_ps() as f64;
    println!("direct execution deviates {err:+.1}% from the detailed model (it cannot see cache misses).");
}
