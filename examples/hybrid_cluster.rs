//! Hybrid architecture study (paper Section 4.3): clusters of shared-
//! memory multiprocessors in a message-passing network.
//!
//! Question a mid-90s architect would put to the workbench: for a fixed
//! budget of 16 processors, is it better to build 16 × 1-CPU nodes,
//! 8 × 2-CPU, or 4 × 4-CPU SMP nodes? Fewer nodes mean less network
//! traffic but more bus contention inside each node.
//!
//! Run with: `cargo run --release --example hybrid_cluster`

use mermaid::prelude::*;
use mermaid::smp::{build_workload, SmpHybridSim};
use mermaid_stats::table::Align;
use mermaid_stats::Table;

/// Computational work per processor, mildly cache-hostile so the node bus
/// matters.
fn cpu_ops(seed: u64, ops: usize) -> Vec<Operation> {
    use mermaid_ops::{ArithOp, DataType};
    (0..ops)
        .map(|i| {
            let x = (i as u64).wrapping_mul(seed | 1).wrapping_add(i as u64);
            match x % 4 {
                0 => Operation::Load {
                    ty: DataType::F64,
                    addr: 0x100000 + (x * 64) % (256 << 10),
                },
                1 => Operation::Store {
                    ty: DataType::F64,
                    addr: 0x100000 + (x * 64) % (256 << 10),
                },
                _ => Operation::Arith {
                    op: ArithOp::Add,
                    ty: DataType::F64,
                },
            }
        })
        .collect()
}

fn main() {
    let total_cpus = 16u32;
    let total_ops = 400_000usize;
    println!("fixed budget: {total_cpus} PowerPC 601 processors, {total_ops} operations total\n");

    let mut table = Table::new([
        "organisation",
        "predicted",
        "bus util% (node 0)",
        "network msgs",
        "comm block (node 0)",
    ])
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    for cpus_per_node in [1usize, 2, 4] {
        let nodes = total_cpus / cpus_per_node as u32;
        let topo = Topology::Ring(nodes);
        let machine = MachineConfig::powerpc601_cluster(topo, cpus_per_node);
        let ops_per_cpu = total_ops / total_cpus as usize;
        // Each node: CPU 0 computes + exchanges with ring neighbours;
        // CPUs 1.. compute only.
        let workload = build_workload(nodes, cpus_per_node, |node, cpu| {
            let mut t =
                Trace::from_ops(node, cpu_ops((node as u64) << 8 | cpu as u64, ops_per_cpu));
            if cpu == 0 {
                t.push(Operation::ASend {
                    bytes: 16 * 1024,
                    dst: (node + 1) % nodes,
                });
                t.push(Operation::Recv {
                    src: (node + nodes - 1) % nodes,
                });
            }
            t
        });
        let r = SmpHybridSim::new(machine).run(&workload);
        assert!(r.comm.all_done);
        let n0 = &r.nodes[0];
        let bus_util =
            100.0 * n0.mem.bus_busy.as_ps() as f64 / n0.compute_finish.as_ps().max(1) as f64;
        table.row([
            format!("{nodes} nodes × {cpus_per_node} CPUs"),
            format!("{}", r.predicted_time),
            format!("{bus_util:.1}"),
            r.comm.total_messages.to_string(),
            format!(
                "{}",
                r.comm.nodes[0].proc.recv_block + r.comm.nodes[0].proc.send_block
            ),
        ]);
    }
    println!("{}", table.render());
    println!("Consolidating CPUs into SMP nodes cuts network messages but raises");
    println!("node-bus utilisation — the workbench quantifies the crossover.");
}
